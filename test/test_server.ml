(* Tests for the query-server daemon (lib/server): protocol round-trips,
   malformed-input resilience, concurrent clients under mixed read/write
   load (every answer verified against a fresh sequential engine on the
   exact structure version the server reports), admission control, a
   client killed mid-stream, and graceful shutdown. *)

module P = Foc.Server_protocol

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let structure n seed =
  let rng = Random.State.make [| n; seed |] in
  coloured seed (Foc.Gen.random_bounded_degree rng n 3)

let fresh_check a phi =
  let config =
    { Foc.Engine.default_config with backend = Foc.Engine.Direct; jobs = 1 }
  in
  Foc.Engine.check (Foc.Engine.create ~config ()) a (Foc.parse_formula phi)

let sock_counter = ref 0

let with_server ?(jobs = 2) ?(max_queue = 256) ?(client_budget = 0)
    ?(slow_ms = 0.) ?slow_log ?(max_cursors = 8) ?(n = 24) ?(seed = 7) f =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "foc_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let a = structure n seed in
  let cfg =
    {
      (Foc.Server.default_config (Foc.Server.Unix_sock path)) with
      Foc.Server.engine =
        { Foc.Engine.default_config with
          backend = Foc.Engine.Direct;
          jobs = 1 };
      jobs;
      max_queue;
      client_budget;
      slow_ms;
      slow_log;
      max_cursors;
    }
  in
  let srv = Foc.Server.start cfg a in
  Fun.protect ~finally:(fun () -> Foc.Server.stop srv) (fun () -> f srv a)

let connect srv = Foc.Server_client.connect (Foc.Server.address srv)

(* ---------------- protocol round-trip (pure) ---------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      P.Ping;
      P.Check "exists x. #(y). E(x,y) >= 2";
      P.Count "#(x,y). E(x,y)";
      P.Insert ("E", [| 3; 4 |]);
      P.Delete ("R", [| 5 |]);
      P.Explain "exists x. #(y). E(x,y) >= 2";
      P.Query
        {
          P.q_head = [ "x"; "y" ];
          q_terms = [ "#(z). E(y,z)" ];
          q_body = "E(x,y)";
          q_limit = Some 100;
          q_chunk = Some 32;
          q_after = Some [| 3; 7 |];
        };
      P.Query
        {
          P.q_head = [ "x" ];
          q_terms = [];
          q_body = "R(x)";
          q_limit = None;
          q_chunk = None;
          q_after = None;
        };
      P.Fetch { f_cursor = 5; f_chunk = Some 64 };
      P.Fetch { f_cursor = 9; f_chunk = None };
      P.Close_cursor 5;
      P.Stats;
      P.Metrics;
      P.Shutdown;
    ]
  in
  List.iteri
    (fun i req ->
      let timing = i mod 2 = 0 in
      let line = P.request_line ~id:i ~timing req in
      match P.parse_request line with
      | Ok ({ P.rid = Some id; timing = timing' }, req') ->
          Alcotest.(check int) "id round-trips" i id;
          Alcotest.(check bool) "timing flag round-trips" timing timing';
          Alcotest.(check string)
            (Printf.sprintf "request %d round-trips" i)
            line
            (P.request_line ~id ~timing:timing' req')
      | Ok ({ P.rid = None; _ }, _) -> Alcotest.fail "id lost"
      | Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [
      P.Bool (true, 3);
      P.Int (42, 0);
      P.Done 7;
      P.Pong;
      P.Bye;
      P.Rows_r
        {
          P.rrows = [ ([| 0; 1 |], [| 2 |]); ([| 0; 3 |], [||]) ];
          more = true;
          cursor = Some 3;
          rversion = 5;
          producer = "walk";
        };
      P.Rows_r
        {
          P.rrows = [];
          more = false;
          cursor = None;
          rversion = 0;
          producer = "table";
        };
      P.Closed;
      P.Stats_r
        {
          P.version = 1;
          connections = 2;
          served = 3;
          shed = 4;
          rejected = 5;
          disconnects = 6;
          p50_us = 120;
          p95_us = 4500;
          p99_us = 9000;
          cursors = 2;
          trace_dropped = 17;
          session = "a=1 b=\"two words\"";
          planner = "planner.replans=1";
          source = "snapshot+wal n=2";
          load_ms = 12;
        };
      P.Explain_r
        {
          P.result = true;
          version = 9;
          cached = false;
          replans = 2;
          plans =
            [
              { P.order = [ 0; 2; 1 ]; steps = [ (12, 9); (40, 37) ];
                replanned = true };
              { P.order = []; steps = []; replanned = false };
            ];
        };
      P.Metrics_r "# TYPE foc_req_check_ns histogram\nfoc_req_check_ns_count 3\n";
      P.Error "bad \"quoted\" thing\nsecond line";
    ]
  in
  let some_timing =
    { P.queue_ns = 10; batch_wait_ns = 2; artifact_ns = 300; plan_ns = 4;
      eval_ns = 5000; write_ns = 0; total_ns = 5400 }
  in
  List.iteri
    (fun i resp ->
      let timing = if i mod 2 = 0 then Some some_timing else None in
      let line = P.response_line ~id:i ?timing resp in
      match P.parse_response line with
      | Ok ({ P.mid = Some id; rtiming }, resp') ->
          Alcotest.(check bool)
            "timing presence round-trips" (timing <> None) (rtiming <> None);
          (match (timing, rtiming) with
          | Some want, Some got ->
              Alcotest.(check int) "total_ns" want.P.total_ns got.P.total_ns;
              Alcotest.(check int) "eval_ns" want.P.eval_ns got.P.eval_ns
          | _ -> ());
          Alcotest.(check string)
            (Printf.sprintf "response %d round-trips" i)
            line
            (P.response_line ~id ?timing:rtiming resp')
      | Ok ({ P.mid = None; _ }, _) -> Alcotest.fail "id lost"
      | Error e -> Alcotest.fail e)
    resps;
  List.iter
    (fun bad ->
      match P.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed request: " ^ bad))
    [
      "";
      "not json";
      "{\"op\":\"frobnicate\"}";
      "{\"query\":\"no op\"}";
      "{\"op\":\"check\"}";
      "{\"op\":\"explain\"}";
      "{\"op\":\"insert\",\"rel\":\"E\"}";
      "{\"op\":\"insert\",\"rel\":\"E\",\"tuple\":[1,\"x\"]}";
      "{\"op\":\"query\",\"body\":\"E(x,y)\"}";
      "{\"op\":\"query\",\"head\":[\"x\",3],\"body\":\"E(x,y)\"}";
      "{\"op\":\"query\",\"head\":[\"x\"]}";
      "{\"op\":\"fetch\"}";
      "{\"op\":\"close_cursor\"}";
    ]

(* A stats response from a server that predates the quantile fields must
   still parse (tolerance mirrors the "planner" field's introduction). *)
let test_stats_parse_tolerance () =
  let old =
    "{\"ok\":true,\"stats\":{\"version\":3,\"connections\":1,\"served\":9,"
    ^ "\"shed\":0,\"rejected\":0,\"disconnects\":0,\"session\":\"x=1\"}}"
  in
  match P.parse_response old with
  | Ok (_, P.Stats_r s) ->
      Alcotest.(check int) "version" 3 s.P.version;
      Alcotest.(check int) "p50 defaults" 0 s.P.p50_us;
      Alcotest.(check int) "p99 defaults" 0 s.P.p99_us;
      Alcotest.(check int) "trace_dropped defaults" 0 s.P.trace_dropped;
      Alcotest.(check int) "cursors defaults" 0 s.P.cursors;
      Alcotest.(check string) "planner defaults" "" s.P.planner
  | Ok (_, r) -> Alcotest.fail ("expected stats, got " ^ P.response_line r)
  | Error e -> Alcotest.fail e

(* ---------------- basic serving ---------------- *)

let test_basic_ops () =
  with_server (fun srv a ->
      let c = connect srv in
      Alcotest.(check bool) "ping" true (Foc.Server_client.rpc c P.Ping = P.Pong);
      let q = "exists x. #(y). E(x,y) >= 2" in
      (match Foc.Server_client.rpc ~id:5 c (P.Check q) with
      | P.Bool (b, v) ->
          Alcotest.(check bool) "check agrees" (fresh_check a q) b;
          Alcotest.(check int) "pre-write version" 0 v
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c (P.Count "#(x,y). E(x,y)") with
      | P.Int (count, 0) ->
          let expected =
            Foc.Engine.eval_ground
              (Foc.Engine.create ())
              a
              (Foc.parse_term "#(x,y). E(x,y)")
          in
          Alcotest.(check int) "count agrees" expected count
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c (P.Insert ("E", [| 0; 1 |])) with
      | P.Done 1 -> ()
      | r -> Alcotest.fail (P.response_line r));
      let b = Foc.Structure.add_tuples a "E" [ [| 0; 1 |] ] in
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Bool (got, 1) ->
          Alcotest.(check bool) "post-write check agrees" (fresh_check b q) got
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c (P.Delete ("E", [| 0; 1 |])) with
      | P.Done 2 -> ()
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c P.Stats with
      | P.Stats_r s ->
          Alcotest.(check int) "stats version" 2 s.P.version;
          Alcotest.(check bool) "served some" true (s.P.served >= 4);
          Alcotest.(check bool)
            "session line present" true
            (String.length s.P.session > 0)
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

(* ---------------- malformed input never kills a connection ------------ *)

let test_malformed_survives () =
  with_server (fun srv _ ->
      let c = connect srv in
      let expect_error raw =
        Foc.Server_client.send_raw c raw;
        match P.parse_response (Foc.Server_client.recv_raw c) with
        | Ok (_, P.Error _) -> ()
        | Ok (_, r) ->
            Alcotest.fail ("expected an error, got " ^ P.response_line r)
        | Error e -> Alcotest.fail e
      in
      expect_error "this is not json";
      expect_error "{\"op\":\"frobnicate\"}";
      expect_error "{\"op\":\"check\",\"query\":\"exists x. ((((\"}";
      expect_error "{\"op\":\"insert\",\"rel\":\"NoSuchRel\",\"tuple\":[1]}";
      expect_error "{\"op\":\"insert\",\"rel\":\"E\",\"tuple\":[1]}";
      Alcotest.(check bool)
        "connection still alive" true
        (Foc.Server_client.rpc c P.Ping = P.Pong);
      (match Foc.Server_client.rpc c (P.Check "exists x. #(y). E(x,y) >= 1") with
      | P.Bool _ -> ()
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

(* ---------------- request-scoped observability ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* a conjunctive counting sentence too wide for the decomposition kernels
   (5 counted variables > max_width): the engine falls back to the
   relational-algebra baseline, so plan_and runs and Eval_obs records a
   join order with per-step predicted/actual rows *)
let planned_q =
  "#(v,w,x,y,z). (E(v,w) & E(w,x) & E(x,y) & E(y,z)) >= 1"

let test_timing_breakdown () =
  with_server (fun srv _ ->
      let c = connect srv in
      (match Foc.Server_client.rpc_full ~timing:true c (P.Check planned_q) with
      | meta, P.Bool _ -> (
          match meta.P.rtiming with
          | None -> Alcotest.fail "timing requested but absent"
          | Some tm ->
              let phases =
                [ tm.P.queue_ns; tm.P.batch_wait_ns; tm.P.artifact_ns;
                  tm.P.plan_ns; tm.P.eval_ns; tm.P.write_ns ]
              in
              List.iter
                (fun ns ->
                  Alcotest.(check bool) "phase nonnegative" true (ns >= 0))
                phases;
              let sum = List.fold_left ( + ) 0 phases in
              Alcotest.(check bool) "phases sum within total" true
                (sum <= tm.P.total_ns);
              Alcotest.(check bool) "eval time observed" true (tm.P.eval_ns > 0))
      | _, r -> Alcotest.fail (P.response_line r));
      (* not requested -> not attached *)
      (match Foc.Server_client.rpc_full c (P.Check planned_q) with
      | meta, P.Bool _ ->
          Alcotest.(check bool) "no unsolicited timing" true
            (meta.P.rtiming = None)
      | _, r -> Alcotest.fail (P.response_line r));
      (* a write lands in write_ns *)
      (match
         Foc.Server_client.rpc_full ~timing:true c (P.Insert ("E", [| 0; 1 |]))
       with
      | meta, P.Done _ -> (
          match meta.P.rtiming with
          | Some tm ->
              Alcotest.(check bool) "write time observed" true
                (tm.P.write_ns > 0)
          | None -> Alcotest.fail "timing absent on write")
      | _, r -> Alcotest.fail (P.response_line r));
      (* stats now exposes read-latency quantiles *)
      (match Foc.Server_client.rpc c P.Stats with
      | P.Stats_r s ->
          Alcotest.(check bool) "quantiles ordered" true
            (0 <= s.P.p50_us && s.P.p50_us <= s.P.p95_us
            && s.P.p95_us <= s.P.p99_us)
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

let test_explain_roundtrip () =
  with_server (fun srv a ->
      let c = connect srv in
      (* evaluate the reference answer BEFORE capturing the plan sequence:
         the fresh engine feeds the same process-wide Eval_obs registry *)
      let want = fresh_check a planned_q in
      let seq0 = Foc.Eval_obs.plan_seq () in
      (match Foc.Server_client.rpc c (P.Explain planned_q) with
      | P.Explain_r e ->
          Alcotest.(check bool) "explain agrees with a fresh engine" want
            e.P.result;
          Alcotest.(check bool) "first sight is a compile miss" false
            e.P.cached;
          Alcotest.(check bool) "at least one plan reported" true
            (e.P.plans <> []);
          (* the wire plans mirror exactly what Eval_obs recorded (same
             process: the server dispatcher feeds the same registry) *)
          let recorded = Foc.Eval_obs.plans_since seq0 in
          Alcotest.(check int) "plan count matches" (List.length recorded)
            (List.length e.P.plans);
          List.iter2
            (fun (pr : Foc.Eval_obs.plan_record) (pi : P.plan_info) ->
              Alcotest.(check (list int)) "join order matches" pr.order
                pi.P.order;
              Alcotest.(check int) "step count matches"
                (List.length pr.steps)
                (List.length pi.P.steps);
              List.iter2
                (fun (_, actual) (_, actual') ->
                  Alcotest.(check int) "actual rows match" actual actual')
                pr.steps pi.P.steps;
              Alcotest.(check bool) "order covers its steps" true
                (List.length pi.P.order = List.length pi.P.steps + 1
                || pi.P.order = []))
            recorded e.P.plans
      | r -> Alcotest.fail (P.response_line r));
      (* same sentence again: answered through the compiled cache *)
      (match Foc.Server_client.rpc c (P.Explain planned_q) with
      | P.Explain_r e ->
          Alcotest.(check bool) "second sight hits the cache" true e.P.cached
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

let test_slow_log () =
  let path = Filename.temp_file "foc_slow" ".log" in
  (* threshold of 1ns: every request is slow *)
  with_server ~slow_ms:1e-6 ~slow_log:path (fun srv _ ->
      let c = connect srv in
      (match Foc.Server_client.rpc c (P.Check planned_q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c);
  (* server stopped: the sink is closed and flushed *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let slow_lines = List.filter (fun l -> contains l "msg=slow_query") !lines in
  Alcotest.(check bool) "a slow line was logged" true (slow_lines <> []);
  let l = List.hd slow_lines in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("slow line has " ^ needle) true (contains l needle))
    [ "op=check"; "total_ms="; "queue_ms="; "eval_ms="; "query=" ]

let test_metrics_op () =
  with_server (fun srv _ ->
      let c = connect srv in
      (match Foc.Server_client.rpc c (P.Check planned_q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c P.Metrics with
      | P.Metrics_r text ->
          List.iter
            (fun needle ->
              Alcotest.(check bool)
                ("metrics page has " ^ needle)
                true (contains text needle))
            [ "# TYPE foc_req_check_ns histogram";
              "foc_req_check_ns_count 1";
              "foc_req_read_ns_sum";
              "le=\"+Inf\"";
              "foc_session_compiled_misses";
              "foc_planner_est_rows" ]
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

let test_client_timeout () =
  (* a socket that listens but never accepts or answers *)
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "foc_dead_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 1;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let c =
        Foc.Server_client.connect ~timeout:0.25 (Foc.Server.Unix_sock path)
      in
      (match Foc.Server_client.rpc c P.Ping with
      | _ -> Alcotest.fail "expected a timeout"
      | exception Foc.Server_client.Timeout -> ());
      Alcotest.(check bool) "timed out promptly" true
        (Unix.gettimeofday () -. t0 < 5.);
      Foc.Server_client.close c)

(* ---------------- concurrent clients, mixed read/write ---------------- *)

(* One writer + [readers] reader threads hammer the server concurrently.
   Every response names the structure version it was evaluated on, and the
   single writer's write log reconstructs each version, so after the join
   every recorded answer is verified against a fresh sequential engine —
   the bit-identical-under-concurrency gate. *)
let test_concurrent_agree () =
  let readers = 8 and reads_per_client = 12 in
  let queries =
    [|
      "exists x. #(y). E(x,y) >= 2";
      "exists x. prime(#(y). (E(x,y) | E(y,x)))";
      "#(x,y). (E(x,y) & B(y)) >= 3";
      "forall x. #(y). E(y,x) <= 3";
      "exists x. (#(y). (E(x,y) & R(y))) >= 1";
      "#(x). prime(#(y). E(x,y)) >= 2";
    |]
  in
  with_server ~n:30 ~seed:11 (fun srv a ->
      let writes =
        [ (true, [| 1; 2 |]); (true, [| 3; 4 |]); (false, [| 1; 2 |]);
          (true, [| 5; 6 |]); (false, [| 3; 4 |]); (true, [| 7; 8 |]) ]
      in
      let write_log = ref [] in
      let writer () =
        let c = connect srv in
        List.iter
          (fun (ins, tup) ->
            let req =
              if ins then P.Insert ("E", tup) else P.Delete ("E", tup)
            in
            match Foc.Server_client.rpc c req with
            | P.Done v -> write_log := (v, ins, tup) :: !write_log
            | r -> Alcotest.fail ("write failed: " ^ P.response_line r))
          writes;
        Foc.Server_client.close c
      in
      let reader_results =
        Array.init readers (fun _ -> ref ([] : (int * int * bool) list))
      in
      let reader k () =
        let c = connect srv in
        let out = reader_results.(k) in
        for i = 0 to reads_per_client - 1 do
          let qi = (k + (3 * i)) mod Array.length queries in
          match Foc.Server_client.rpc c (P.Check queries.(qi)) with
          | P.Bool (b, v) -> out := (qi, v, b) :: !out
          | r -> Alcotest.fail ("read failed: " ^ P.response_line r)
        done;
        Foc.Server_client.close c
      in
      let threads =
        Thread.create writer ()
        :: List.init readers (fun k -> Thread.create (reader k) ())
      in
      List.iter Thread.join threads;
      (* exceptions in client threads don't propagate through join: assert
         every thread completed its full schedule *)
      Array.iteri
        (fun k out ->
          Alcotest.(check int)
            (Printf.sprintf "reader %d completed" k)
            reads_per_client (List.length !out))
        reader_results;
      (* replay the write log into one structure per version *)
      let log = List.sort compare !write_log in
      Alcotest.(check int) "all writes applied" (List.length writes)
        (List.length log);
      let structures = Array.make (List.length log + 1) a in
      List.iteri
        (fun i (v, ins, tup) ->
          Alcotest.(check int) "single writer => dense versions" (i + 1) v;
          structures.(i + 1) <-
            (if ins then Foc.Structure.add_tuples structures.(i) "E" [ tup ]
             else Foc.Structure.remove_tuples structures.(i) "E" [ tup ]))
        log;
      (* verify every recorded answer on the exact version it was read at *)
      let expected = Hashtbl.create 64 in
      Array.iter
        (fun out ->
          List.iter
            (fun (qi, v, got) ->
              let key = (qi, v) in
              let want =
                match Hashtbl.find_opt expected key with
                | Some w -> w
                | None ->
                    let w = fresh_check structures.(v) queries.(qi) in
                    Hashtbl.add expected key w;
                    w
              in
              Alcotest.(check bool)
                (Printf.sprintf "q%d at version %d" qi v)
                want got)
            !out)
        reader_results;
      Alcotest.(check int) "every reader answered" readers
        (Array.length reader_results))

(* ---------------- admission control ---------------- *)

let test_admission_shed () =
  (* a zero-length queue sheds every queued op; ping is answered inline *)
  with_server ~max_queue:0 (fun srv _ ->
      let c = connect srv in
      Alcotest.(check bool) "ping bypasses the queue" true
        (Foc.Server_client.rpc c P.Ping = P.Pong);
      (match Foc.Server_client.rpc c (P.Check "exists x. #(y). E(x,y) >= 1") with
      | P.Error m ->
          Alcotest.(check bool)
            ("overload error mentions overload: " ^ m)
            true
            (String.length m >= 10 && String.sub m 0 10 = "overloaded")
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

let test_admission_budget () =
  with_server ~client_budget:2 (fun srv _ ->
      let q = "exists x. #(y). E(x,y) >= 1" in
      let c = connect srv in
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail (P.response_line r));
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Error _ -> ()
      | r -> Alcotest.fail ("expected budget rejection: " ^ P.response_line r));
      Alcotest.(check bool) "ping still free" true
        (Foc.Server_client.rpc c P.Ping = P.Pong);
      Foc.Server_client.close c;
      (* a fresh connection gets a fresh budget *)
      let c2 = connect srv in
      (match Foc.Server_client.rpc c2 (P.Check q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail ("fresh connection: " ^ P.response_line r));
      Foc.Server_client.close c2)

(* ---------------- streaming queries ---------------- *)

let mk_query ?limit ?chunk ?after ?(terms = []) head body =
  P.Query
    {
      P.q_head = head;
      q_terms = terms;
      q_body = body;
      q_limit = limit;
      q_chunk = chunk;
      q_after = after;
    }

(* the reference the streamed answers must be bit-identical to *)
let materialised a ?(terms = []) head body =
  let q =
    Foc.Query.make ~head_vars:head
      ~head_terms:(List.map Foc.parse_term terms)
      (Foc.parse_formula body)
  in
  Foc.Relalg.query Foc.predicates a q

let row_pair =
  Alcotest.pair (Alcotest.array Alcotest.int) (Alcotest.array Alcotest.int)

let open_cursors srv c =
  match Foc.Server_client.rpc c P.Stats with
  | P.Stats_r s -> s.P.cursors
  | r ->
      ignore srv;
      Alcotest.fail (P.response_line r)

let test_streaming_query () =
  with_server (fun srv a ->
      let c = connect srv in
      let head = [ "x"; "y" ] and body = "E(x,y)" in
      let terms = [ "#(z). E(y,z)" ] in
      let want = materialised a ~terms head body in
      Alcotest.(check bool) "workload is non-trivial" true
        (List.length want > 8);
      (* chunk of 3 forces several fetch round-trips *)
      let got = ref [] in
      (match
         Foc.Server_client.query_iter c
           { P.q_head = head; q_terms = terms; q_body = body;
             q_limit = None; q_chunk = Some 3; q_after = None }
           (fun row -> got := row :: !got)
       with
      | Ok producer ->
          Alcotest.(check bool) "producer named" true (producer <> "")
      | Error e -> Alcotest.fail e);
      Alcotest.(check (list row_pair))
        "streamed = materialised (content and order)" want
        (List.rev !got);
      Alcotest.(check int) "drained cursor closed server-side" 0
        (open_cursors srv c);
      (* limit caps the stream; after resumes exactly behind a row *)
      (match Foc.Server_client.rpc c (mk_query ~limit:4 ~chunk:2 head body) with
      | P.Rows_r r ->
          Alcotest.(check int) "limit chunk" 2 (List.length r.P.rrows);
          (match r.P.cursor with
          | Some id -> (
              match Foc.Server_client.rpc c (P.Close_cursor id) with
              | P.Closed -> ()
              | r -> Alcotest.fail (P.response_line r))
          | None -> ())
      | r -> Alcotest.fail (P.response_line r));
      let split = List.length want / 2 in
      let after = fst (List.nth want (split - 1)) in
      let tail = ref [] in
      (match
         Foc.Server_client.query_iter c
           { P.q_head = head; q_terms = terms; q_body = body;
             q_limit = None; q_chunk = Some 5; q_after = Some after }
           (fun row -> tail := row :: !tail)
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check (list row_pair))
        "after resumes mid-stream"
        (List.filteri (fun i _ -> i >= split) (materialised a ~terms head body))
        (List.rev !tail);
      (* explicit close releases the cursor *)
      (match Foc.Server_client.rpc c (mk_query ~chunk:1 head body) with
      | P.Rows_r { P.cursor = Some id; more = true; _ } -> (
          Alcotest.(check int) "open until closed" 1 (open_cursors srv c);
          match Foc.Server_client.rpc c (P.Close_cursor id) with
          | P.Closed ->
              Alcotest.(check int) "closed" 0 (open_cursors srv c);
              (match Foc.Server_client.rpc c (P.Close_cursor id) with
              | P.Error _ -> ()
              | r -> Alcotest.fail ("double close: " ^ P.response_line r))
          | r -> Alcotest.fail (P.response_line r))
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

(* a write expires every open cursor: the next fetch errors instead of
   serving rows from the superseded snapshot *)
let test_cursor_expires_on_write () =
  with_server (fun srv _ ->
      let c = connect srv in
      (match Foc.Server_client.rpc c (mk_query ~chunk:2 [ "x"; "y" ] "E(x,y)") with
      | P.Rows_r { P.cursor = Some id; more = true; rversion; _ } -> (
          Alcotest.(check int) "pinned to pre-write version" 0 rversion;
          (match Foc.Server_client.rpc c (P.Insert ("E", [| 0; 1 |])) with
          | P.Done 1 -> ()
          | r -> Alcotest.fail (P.response_line r));
          (match
             Foc.Server_client.rpc c (P.Fetch { f_cursor = id; f_chunk = None })
           with
          | P.Error m ->
              Alcotest.(check bool)
                ("expiry error says so: " ^ m)
                true
                (String.length m >= 14
                && String.sub m 0 14 = "cursor expired")
          | r -> Alcotest.fail ("expected expiry: " ^ P.response_line r));
          Alcotest.(check int) "expired cursor reaped" 0 (open_cursors srv c))
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

let test_cursor_budget_and_ownership () =
  with_server ~max_cursors:1 (fun srv _ ->
      let c = connect srv in
      (match Foc.Server_client.rpc c (mk_query ~chunk:1 [ "x"; "y" ] "E(x,y)") with
      | P.Rows_r { P.cursor = Some id; _ } -> (
          (* budget: a second open on the same connection is refused *)
          (match Foc.Server_client.rpc c (mk_query ~chunk:1 [ "x" ] "R(x) | B(x) | G(x)") with
          | P.Error m ->
              Alcotest.(check bool)
                ("budget error says so: " ^ m)
                true
                (String.length m >= 13
                && String.sub m 0 13 = "cursor budget")
          | r -> Alcotest.fail ("expected budget error: " ^ P.response_line r));
          (* ownership: another connection can neither fetch nor close it *)
          let c2 = connect srv in
          (match
             Foc.Server_client.rpc c2 (P.Fetch { f_cursor = id; f_chunk = None })
           with
          | P.Error "unknown cursor" -> ()
          | r -> Alcotest.fail ("foreign fetch: " ^ P.response_line r));
          (match Foc.Server_client.rpc c2 (P.Close_cursor id) with
          | P.Error "unknown cursor" -> ()
          | r -> Alcotest.fail ("foreign close: " ^ P.response_line r));
          Foc.Server_client.close c2;
          (* closing frees the budget *)
          (match Foc.Server_client.rpc c (P.Close_cursor id) with
          | P.Closed -> ()
          | r -> Alcotest.fail (P.response_line r));
          match Foc.Server_client.rpc c (mk_query ~chunk:1 [ "x"; "y" ] "E(x,y)") with
          | P.Rows_r _ -> ()
          | r -> Alcotest.fail ("after close: " ^ P.response_line r))
      | r -> Alcotest.fail (P.response_line r));
      Foc.Server_client.close c)

(* ---------------- client killed mid-stream ---------------- *)

let test_client_killed_mid_stream () =
  (* Before the SIGPIPE fix this test killed the whole test binary: the
     server's response write to a vanished client raised the signal. *)
  with_server (fun srv _ ->
      let q = "exists x. prime(#(y). (E(x,y) | E(y,x)))" in
      for _ = 1 to 3 do
        let c = connect srv in
        (* open a streaming cursor and leave it dangling, then leave
           requests in flight and vanish without reading *)
        (match
           Foc.Server_client.rpc c (mk_query ~chunk:1 [ "x"; "y" ] "E(x,y)")
         with
        | P.Rows_r { P.cursor = Some _; more = true; _ } -> ()
        | r -> Alcotest.fail ("cursor open: " ^ P.response_line r));
        Foc.Server_client.send_raw c (P.request_line (P.Check q));
        Foc.Server_client.send_raw c (P.request_line (P.Check q));
        Foc.Server_client.close c
      done;
      Thread.yield ();
      let c = connect srv in
      Alcotest.(check bool) "server survives" true
        (Foc.Server_client.rpc c P.Ping = P.Pong);
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Bool _ -> ()
      | r -> Alcotest.fail ("next request: " ^ P.response_line r));
      (* the vanished clients' cursors were reaped, not leaked — poll
         briefly: reaping runs on each conn thread's exit path *)
      let rec settle tries =
        let open_now = open_cursors srv c in
        if open_now = 0 then 0
        else if tries = 0 then open_now
        else begin
          Thread.yield ();
          Unix.sleepf 0.01;
          settle (tries - 1)
        end
      in
      Alcotest.(check int) "no cursor leaked by dead clients" 0 (settle 100);
      Foc.Server_client.close c)

(* ---------------- graceful shutdown ---------------- *)

let test_graceful_shutdown () =
  with_server (fun srv a ->
      let q = "exists x. #(y). E(x,y) >= 2" in
      (* several clients get answers, then one asks for shutdown *)
      let answers = Array.make 4 None in
      let threads =
        List.init 4 (fun k ->
            Thread.create
              (fun () ->
                let c = connect srv in
                (match Foc.Server_client.rpc c (P.Check q) with
                | P.Bool (b, _) -> answers.(k) <- Some b
                | _ -> ());
                Foc.Server_client.close c)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun k got ->
          Alcotest.(check (option bool))
            (Printf.sprintf "client %d answered" k)
            (Some (fresh_check a q))
            got)
        answers;
      let c = connect srv in
      Alcotest.(check bool) "shutdown acknowledged" true
        (Foc.Server_client.rpc c P.Shutdown = P.Bye);
      (* post-shutdown requests are rejected or the connection closes *)
      (match Foc.Server_client.rpc c (P.Check q) with
      | P.Error _ -> ()
      | exception End_of_file -> ()
      | r -> Alcotest.fail ("expected rejection: " ^ P.response_line r));
      Foc.Server_client.close c;
      (* wait returns: the daemon drained and stopped *)
      Foc.Server.wait srv)

(* Regression: the final replies of a draining server used to race the
   stop path.  [cleanup] shut each connection socket in BOTH directions,
   and on a busy scheduler it won the race against the connection
   thread's last [send_line] — the very client that asked for shutdown
   saw EOF instead of its [bye] (likewise any in-flight answer on
   another connection).  Receive-side-only shutdown keeps the write path
   open.  The race was timing-dependent (~50% on one core), so run the
   round-trip several times. *)
let test_shutdown_reply_delivered () =
  for round = 1 to 6 do
    with_server (fun srv _ ->
        let c = connect srv in
        (match Foc.Server_client.rpc c (P.Insert ("E", [| 1; 2 |])) with
        | P.Done _ -> ()
        | r -> Alcotest.fail ("insert: " ^ P.response_line r));
        (match Foc.Server_client.rpc c P.Stats with
        | P.Stats_r _ -> ()
        | r -> Alcotest.fail ("stats: " ^ P.response_line r));
        (match Foc.Server_client.rpc c P.Shutdown with
        | P.Bye -> ()
        | r ->
            Alcotest.fail
              (Printf.sprintf "round %d: expected bye, got %s" round
                 (P.response_line r))
        | exception End_of_file ->
            Alcotest.fail
              (Printf.sprintf
                 "round %d: connection closed before the bye reply" round));
        Foc.Server_client.close c;
        Foc.Server.wait srv)
  done

let () =
  Alcotest.run "query server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request/response round-trip" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "stats parse tolerance" `Quick
            test_stats_parse_tolerance;
        ] );
      ( "serving",
        [
          Alcotest.test_case "basic ops + versions" `Quick test_basic_ops;
          Alcotest.test_case "malformed input survives" `Quick
            test_malformed_survives;
          Alcotest.test_case "concurrent clients agree" `Quick
            test_concurrent_agree;
        ] );
      ( "observability",
        [
          Alcotest.test_case "timing breakdown" `Quick test_timing_breakdown;
          Alcotest.test_case "explain round-trip" `Quick
            test_explain_roundtrip;
          Alcotest.test_case "slow-query log" `Quick test_slow_log;
          Alcotest.test_case "metrics exposition" `Quick test_metrics_op;
          Alcotest.test_case "client timeout" `Quick test_client_timeout;
        ] );
      ( "admission control",
        [
          Alcotest.test_case "queue overflow sheds" `Quick test_admission_shed;
          Alcotest.test_case "per-client budget" `Quick test_admission_budget;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "query/fetch/close round-trip" `Quick
            test_streaming_query;
          Alcotest.test_case "cursor expires on write" `Quick
            test_cursor_expires_on_write;
          Alcotest.test_case "cursor budget and ownership" `Quick
            test_cursor_budget_and_ownership;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "client killed mid-stream" `Quick
            test_client_killed_mid_stream;
          Alcotest.test_case "graceful shutdown drains" `Quick
            test_graceful_shutdown;
          Alcotest.test_case "shutdown reply reaches the client" `Quick
            test_shutdown_reply_delivered;
        ] );
    ]
