(* Tests for the observability layer (foc_obs): logfmt rendering,
   histogram bucketing, the metrics registry, span nesting and the Chrome
   trace export round-trip — plus the load-bearing property that turning
   observability on cannot change an evaluation result, for every back-end
   and for jobs=1 and jobs=4. *)

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let engine backend jobs =
  Foc.Engine.create
    ~config:{ Foc.Engine.default_config with backend; jobs }
    ()

(* every test leaves the global observability state off *)
let obs_off () =
  Foc.Obs.Trace.disable ();
  Foc.Obs.Trace.clear ();
  Foc.Obs.set_timing false;
  Foc.Obs.Trace.set_logfmt_sink None

(* ---------------- logfmt ---------------- *)

let test_logfmt () =
  let open Foc.Obs.Logfmt in
  Alcotest.(check string)
    "plain" "a=1 b=ok c=true"
    (line [ ("a", Int 1); ("b", Str "ok"); ("c", Bool true) ]);
  Alcotest.(check string)
    "float" "t=0.250000"
    (line [ ("t", Float 0.25) ]);
  Alcotest.(check string)
    "spaces quoted" "msg=\"two words\""
    (line [ ("msg", Str "two words") ]);
  Alcotest.(check string)
    "equals quoted" "msg=\"k=v\""
    (line [ ("msg", Str "k=v") ]);
  Alcotest.(check string)
    "quotes escaped" "msg=\"say \\\"hi\\\"\""
    (line [ ("msg", Str "say \"hi\"") ]);
  Alcotest.(check string)
    "newline escaped" "msg=\"a\\nb\""
    (line [ ("msg", Str "a\nb") ])

(* ---------------- histogram buckets ---------------- *)

let test_histogram_buckets () =
  let b = Foc.Obs.Metrics.Histogram.bucket_of in
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) expect (b v))
    [
      (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3);
      (7, 3); (8, 4); (1023, 10); (1024, 11); (max_int, 62);
    ]

let test_histogram_observe () =
  let open Foc.Obs.Metrics in
  let r = create () in
  let h = histogram r "h" in
  List.iter (Histogram.observe h) [ 0; 1; 1; 3; 1000; -5 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "sum" 1000 (Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets"
    [ (0, 2); (1, 2); (3, 1); (1023, 1) ]
    (Histogram.nonzero_buckets h)

let test_histogram_quantiles () =
  let open Foc.Obs.Metrics in
  let r = create () in
  let empty = histogram r "empty" in
  Alcotest.(check (float 0.)) "empty histogram" 0. (Histogram.quantile empty 0.5);
  (* 100 observations in one bucket [4,7]: interpolation walks the bucket *)
  let single = histogram r "single" in
  for _ = 1 to 100 do
    Histogram.observe single 5
  done;
  Alcotest.(check (float 1e-9)) "single-bucket p50" 5.5
    (Histogram.quantile single 0.5);
  Alcotest.(check (float 1e-9)) "q<=0 is the bucket floor" 4.
    (Histogram.quantile single 0.);
  Alcotest.(check (float 1e-9)) "q>=1 is the bucket ceiling" 7.
    (Histogram.quantile single 1.);
  (* 50 ones + 50 at 1024: the median rank lands exactly on the edge of
     the first bucket, p95 interpolates inside the second *)
  let split = histogram r "split" in
  for _ = 1 to 50 do
    Histogram.observe split 1;
    Histogram.observe split 1024
  done;
  Alcotest.(check (float 1e-9)) "edge-rank p50" 1.
    (Histogram.quantile split 0.5);
  let p95 = Histogram.quantile split 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "p95 inside [1024,2047], got %f" p95)
    true
    (p95 >= 1024. && p95 <= 2047.);
  (* monotone in q *)
  Alcotest.(check bool) "monotone" true
    (Histogram.quantile split 0.2 <= Histogram.quantile split 0.8)

(* ---------------- registry ---------------- *)

let test_registry () =
  let open Foc.Obs.Metrics in
  let r = create () in
  let c = counter r "x.count" in
  Counter.inc c;
  Counter.add c 4;
  (* get-or-create returns the same underlying cell *)
  Counter.inc (counter r "x.count");
  Alcotest.(check int) "counter" 6 (Counter.value c);
  let g = gauge r "x.peak" in
  Gauge.set_max g 10;
  Gauge.set_max g 3;
  Alcotest.(check int) "gauge keeps max" 10 (Gauge.value g);
  let h = histogram r "x.ns" in
  Histogram.observe h 100;
  Alcotest.(check string)
    "line sorted with histogram scalars"
    "x.count=6 x.ns.count=1 x.ns.sum=100 x.peak=10" (line r);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: name in use: x.count") (fun () ->
      ignore (gauge r "x.count"));
  Alcotest.(check int) "report has one line per metric" 3
    (List.length (report r))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_prometheus () =
  let open Foc.Obs.Metrics in
  let r1 = create () and r2 = create () in
  Counter.add (counter r1 "req.slow") 3;
  Gauge.set (gauge r1 "cache.bytes") 512;
  let h = histogram r1 "req.read.ns" in
  Histogram.observe h 5;
  Histogram.observe h 1000;
  (* same sanitised name in a later registry: first wins, no dup series *)
  Counter.add (counter r2 "req.slow") 99;
  Counter.add (counter r2 "other.count") 7;
  let page = prometheus [ r1; r2 ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("page has " ^ needle) true (contains page needle))
    [
      "# TYPE foc_req_slow counter";
      "foc_req_slow 3";
      "# TYPE foc_cache_bytes gauge";
      "foc_cache_bytes 512";
      "# TYPE foc_req_read_ns histogram";
      "foc_req_read_ns_bucket{le=\"7\"} 1";
      "foc_req_read_ns_bucket{le=\"1023\"} 2";
      "foc_req_read_ns_bucket{le=\"+Inf\"} 2";
      "foc_req_read_ns_sum 1005";
      "foc_req_read_ns_count 2";
      "foc_other_count 7";
    ];
  Alcotest.(check bool) "first registry wins on a clash" false
    (contains page "foc_req_slow 99")

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  let v =
    Foc.Obs.span ~name:"outer" (fun () ->
        Foc.Obs.span ~name:"inner" (fun () -> 21) * 2)
  in
  (* a span closed by an exception must still be recorded *)
  (try
     Foc.Obs.span ~name:"raises" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "value passes through" 42 v;
  let evs = Foc.Obs.Trace.events () in
  Alcotest.(check (list string))
    "merged order: outer first (earlier start), inner nested"
    [ "outer"; "inner"; "raises" ]
    (List.map (fun (e : Foc.Obs.Trace.event) -> e.name) evs);
  Alcotest.(check (list int))
    "depths" [ 1; 2; 1 ]
    (List.map (fun (e : Foc.Obs.Trace.event) -> e.depth) evs);
  Alcotest.(check bool) "well nested" true (Foc.Obs.Trace.well_nested ());
  let totals = Foc.Obs.Trace.phase_totals () in
  let outer = List.assoc "outer" totals in
  let inner = List.assoc "inner" totals in
  Alcotest.(check bool)
    "outer self excludes inner" true
    (outer.Foc.Obs.Trace.self_ns
     = outer.Foc.Obs.Trace.total_ns - inner.Foc.Obs.Trace.total_ns);
  obs_off ();
  Alcotest.(check int) "clear drops events" 0
    (List.length (Foc.Obs.Trace.events ()));
  (* disabled spans record nothing and cost nothing observable *)
  Alcotest.(check int) "disabled span is transparent" 7
    (Foc.Obs.span ~name:"ghost" (fun () -> 7));
  Alcotest.(check int) "no ghost event" 0
    (List.length (Foc.Obs.Trace.events ()))

let test_span_parallel_labels () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  let out =
    Foc.Par.tabulate ~jobs:4 ~label:"work" 200 (fun i -> i + 1)
  in
  Alcotest.(check (array int))
    "values" (Array.init 200 (fun i -> i + 1)) out;
  let evs = Foc.Obs.Trace.events () in
  Alcotest.(check bool) "at least one labelled span" true
    (List.exists (fun (e : Foc.Obs.Trace.event) -> e.name = "work") evs);
  Alcotest.(check bool) "all spans labelled" true
    (List.for_all (fun (e : Foc.Obs.Trace.event) -> e.name = "work") evs);
  Alcotest.(check bool) "well nested across domains" true
    (Foc.Obs.Trace.well_nested ());
  obs_off ()

(* ---------------- bounded trace rings ---------------- *)

let test_trace_ring_cap () =
  obs_off ();
  let default = Foc.Obs.Trace.cap () in
  Fun.protect
    ~finally:(fun () ->
      Foc.Obs.Trace.set_cap default;
      obs_off ())
    (fun () ->
      Foc.Obs.Trace.set_cap 8;
      Alcotest.(check int) "cap taken" 8 (Foc.Obs.Trace.cap ());
      Foc.Obs.Trace.enable ();
      (* 50 nested-pair spans: far beyond the cap, the ring wraps *)
      for i = 1 to 50 do
        Foc.Obs.span
          ~name:(Printf.sprintf "outer%d" i)
          (fun () -> Foc.Obs.span ~name:(Printf.sprintf "inner%d" i) ignore)
      done;
      let evs = Foc.Obs.Trace.events () in
      Alcotest.(check int) "ring holds exactly the cap" 8 (List.length evs);
      Alcotest.(check int) "drop counter accounts for the rest" (100 - 8)
        (Foc.Obs.Trace.dropped_events ());
      (* the survivors are the newest-closed spans *)
      Alcotest.(check bool) "latest span survives" true
        (List.exists
           (fun (e : Foc.Obs.Trace.event) -> e.name = "outer50")
           evs);
      (* a subset of a well-nested event set stays well nested, and the
         exporter still produces valid JSON on a wrapped buffer *)
      Alcotest.(check bool) "wrapped buffer well nested" true
        (Foc.Obs.Trace.well_nested ());
      let path = Filename.temp_file "foc_ring" ".json" in
      Foc.Obs.Trace.export_chrome path;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      (match Foc.Obs.Json.parse s with
      | Ok (Foc.Obs.Json.List l) ->
          Alcotest.(check int) "export matches ring contents" 8
            (List.length l)
      | Ok _ -> Alcotest.fail "wrapped export is not an array"
      | Error e -> Alcotest.failf "wrapped export does not parse: %s" e);
      (* clear resets the drop counter too *)
      Foc.Obs.Trace.clear ();
      Alcotest.(check int) "clear resets drops" 0
        (Foc.Obs.Trace.dropped_events ()))

(* ---------------- request scopes ---------------- *)

let test_scope_phases () =
  let open Foc.Obs.Scope in
  let s = create ~id:7 () in
  Alcotest.(check int) "id kept" 7 (id s);
  (* nested phases use self-time: the inner Artifact interval is excluded
     from the surrounding Eval accumulator *)
  let spin ns =
    let t0 = ref (Foc.Obs.Clock.now_ns ()) in
    let stop = !t0 + ns in
    while Foc.Obs.Clock.now_ns () < stop do
      ()
    done
  in
  time s Eval (fun () ->
      spin 2_000_000;
      time s Artifact (fun () -> spin 2_000_000);
      spin 1_000_000);
  add_ns s Queue 500;
  let total = finish s in
  Alcotest.(check int) "total_ns matches finish" total (total_ns s);
  let e = phase_ns s Eval and a = phase_ns s Artifact in
  Alcotest.(check bool) "eval ≈ its own spinning only" true
    (e >= 3_000_000 && e < 5_000_000);
  Alcotest.(check bool) "artifact holds the nested interval" true
    (a >= 2_000_000);
  Alcotest.(check bool) "phases sum within total" true
    (e + a + 500 <= total);
  Alcotest.(check int) "add_ns credits directly" 500 (phase_ns s Queue);
  (* breakdown is the six accumulators in protocol order *)
  Alcotest.(check (list string))
    "breakdown keys"
    [ "queue_ns"; "batch_wait_ns"; "artifact_ns"; "plan_ns"; "eval_ns";
      "write_ns" ]
    (List.map fst (breakdown s));
  (* merge adds accumulators *)
  let d = create () in
  add_ns d Eval 10;
  merge_phases d s;
  Alcotest.(check int) "merge adds eval" (10 + e) (phase_ns d Eval);
  (* ambient scope: cue reaches the installed scope, and is a no-op
     without one *)
  Alcotest.(check int) "cue without scope is transparent" 9
    (cue Plan (fun () -> 9));
  with_scope s (fun () -> cue Plan (fun () -> spin 1_000_000));
  Alcotest.(check bool) "cue credited the ambient scope" true
    (phase_ns s Plan >= 1_000_000);
  Alcotest.(check bool) "no ambient scope outside with_scope" true
    (current () = None)

(* ---------------- trace export round-trip ---------------- *)

let test_export_round_trip () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  Foc.Obs.span ~name:"alpha" (fun () ->
      Foc.Obs.span ~name:"beta \"q\"" ignore);
  let n_events = List.length (Foc.Obs.Trace.events ()) in
  let path = Filename.temp_file "foc_trace" ".json" in
  Foc.Obs.Trace.export_chrome path;
  obs_off ();
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Foc.Obs.Json.parse s with
  | Error e -> Alcotest.failf "exported trace does not parse: %s" e
  | Ok (Foc.Obs.Json.List evs) ->
      Alcotest.(check int) "event count survives" n_events (List.length evs);
      let names =
        List.map
          (fun ev ->
            (match Foc.Obs.Json.member "ph" ev with
            | Some (Foc.Obs.Json.Str "X") -> ()
            | _ -> Alcotest.fail "ph must be \"X\"");
            List.iter
              (fun k ->
                match Foc.Obs.Json.member k ev with
                | Some (Foc.Obs.Json.Num f) when f >= 0. -> ()
                | _ -> Alcotest.failf "bad field %s" k)
              [ "ts"; "dur"; "pid"; "tid" ];
            match Foc.Obs.Json.member "name" ev with
            | Some (Foc.Obs.Json.Str s) -> s
            | _ -> Alcotest.fail "missing name")
          evs
      in
      Alcotest.(check bool) "escaped name survives round-trip" true
        (List.mem "beta \"q\"" names)
  | Ok _ -> Alcotest.fail "exported trace is not a JSON array"

let test_json_parser () =
  let open Foc.Obs.Json in
  (match parse "{\"a\": [1, 2.5, true, null, \"x\\n\"]}" with
  | Ok (Obj [ ("a", List [ Num 1.; Num 2.5; Bool true; Null; Str "x\n" ]) ])
    ->
      ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad)
    [ ""; "{"; "[1,]"; "[1] trailing"; "\"unterminated"; "nul" ]

(* ---------------- engine metrics as a view ---------------- *)

let test_engine_stats_view () =
  obs_off ();
  let a =
    coloured 5 (Foc.Gen.random_bounded_degree (Random.State.make [| 5 |]) 60 3)
  in
  let eng = engine Foc.Engine.Cover 1 in
  ignore
    (Foc.Engine.eval_ground eng a
       (Foc.parse_term "#(x,y). (R(x) & E(x,y))"));
  let st = Foc.Engine.stats eng in
  Alcotest.(check bool) "basic terms counted" true (st.basic_terms > 0);
  Alcotest.(check bool) "covers counted" true (st.covers_built > 0);
  (* the registry view and the record view agree *)
  Alcotest.(check int)
    "registry backs the record" st.basic_terms
    Foc.Obs.Metrics.(
      Counter.value (counter (Foc.Engine.metrics eng) "engine.basic_terms"));
  let line = Foc.Engine.stats_line eng in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats_line mentions covers" true
    (contains line "engine.covers_built=")

let test_incremental_metrics () =
  obs_off ();
  let a =
    coloured 7 (Foc.Gen.random_tree (Random.State.make [| 7 |]) 50)
  in
  let cl =
    match
      Foc.Decompose.unary_count ~r:1 ~vars:[ "x"; "y" ]
        (Foc.parse_formula "E(x,y) & B(y)")
    with
    | Some cl -> cl
    | None -> Alcotest.fail "decomposition failed"
  in
  let inc = Foc.Incremental.create Foc.predicates a cl in
  let affected = Foc.Incremental.insert inc "E" [| 0; 49 |] in
  Alcotest.(check bool) "some anchors re-evaluated" true (affected > 0);
  let m = Foc.Incremental.metrics inc in
  let h = Foc.Obs.Metrics.histogram m "incr.update.affected" in
  Alcotest.(check int) "one update observed" 1
    (Foc.Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "histogram sums the affected counts" affected
    (Foc.Obs.Metrics.Histogram.sum h);
  Alcotest.(check bool) "stats_line renders" true
    (String.length (Foc.Incremental.stats_line inc) > 0)

(* ---------------- obs on/off invariance ---------------- *)

let body_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "E(x,y)"; "E(y,x)"; "B(y)"; "R(y)"; "G(y)"; "R(x)" ] in
  let literal = map2 (fun neg a -> if neg then "!" ^ a else a) bool atom in
  let connective = oneofl [ " & "; " | " ] in
  map3
    (fun l1 op l2 -> "(" ^ l1 ^ op ^ l2 ^ ")")
    literal connective literal

let arb_case =
  QCheck.make
    ~print:(fun (n, seed, body) ->
      Printf.sprintf "n=%d seed=%d %s" n seed body)
    QCheck.Gen.(triple (int_range 8 40) (int_range 0 10000) body_gen)

let prop_invariant backend name =
  QCheck.Test.make ~name ~count:20 arb_case (fun (n, seed, body) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc.Gen.random_bounded_degree rng n 3) in
      let ground = Foc.parse_term (Printf.sprintf "#(x,y). %s" body) in
      let unary = Foc.parse_term (Printf.sprintf "#(y). %s" body) in
      let sentence =
        Foc.parse_formula (Printf.sprintf "#(x,y). %s >= 3" body)
      in
      let run jobs =
        let eng = engine backend jobs in
        let g = Foc.Engine.eval_ground eng a ground in
        let u = Foc.Engine.eval_unary eng a "x" unary in
        let c = Foc.Engine.check eng a sentence in
        (g, u, c)
      in
      let results jobs =
        obs_off ();
        let off = run jobs in
        Foc.Obs.Trace.enable ();
        Foc.Obs.set_timing true;
        (* an installed ambient request scope must also be invisible to
           the answers — this is the path [foc serve] runs on *)
        let on =
          Foc.Obs.Scope.with_scope
            (Foc.Obs.Scope.create ())
            (fun () -> run jobs)
        in
        obs_off ();
        off = on
      in
      results 1 && results 4)

let () =
  obs_off ();
  Alcotest.run "observability"
    [
      ( "primitives",
        [
          Alcotest.test_case "logfmt escaping" `Quick test_logfmt;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram observe" `Quick
            test_histogram_observe;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "metrics registry" `Quick test_registry;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + self time" `Quick test_span_nesting;
          Alcotest.test_case "bounded ring wraps" `Quick test_trace_ring_cap;
          Alcotest.test_case "request scope phases" `Quick test_scope_phases;
          Alcotest.test_case "parallel labels" `Quick
            test_span_parallel_labels;
          Alcotest.test_case "chrome export round-trip" `Quick
            test_export_round_trip;
        ] );
      ( "engine integration",
        [
          Alcotest.test_case "stats is a registry view" `Quick
            test_engine_stats_view;
          Alcotest.test_case "incremental counters" `Quick
            test_incremental_metrics;
        ] );
      ( "obs on = obs off",
        [
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Direct "direct: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Cover "cover: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Hanf "hanf: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant
               (Foc.Engine.Splitter { max_rounds = 3; small = 64 })
               "splitter: obs on = off");
        ] );
    ]
