(* Tests for the observability layer (foc_obs): logfmt rendering,
   histogram bucketing, the metrics registry, span nesting and the Chrome
   trace export round-trip — plus the load-bearing property that turning
   observability on cannot change an evaluation result, for every back-end
   and for jobs=1 and jobs=4. *)

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let engine backend jobs =
  Foc.Engine.create
    ~config:{ Foc.Engine.default_config with backend; jobs }
    ()

(* every test leaves the global observability state off *)
let obs_off () =
  Foc.Obs.Trace.disable ();
  Foc.Obs.Trace.clear ();
  Foc.Obs.set_timing false;
  Foc.Obs.Trace.set_logfmt_sink None

(* ---------------- logfmt ---------------- *)

let test_logfmt () =
  let open Foc.Obs.Logfmt in
  Alcotest.(check string)
    "plain" "a=1 b=ok c=true"
    (line [ ("a", Int 1); ("b", Str "ok"); ("c", Bool true) ]);
  Alcotest.(check string)
    "float" "t=0.250000"
    (line [ ("t", Float 0.25) ]);
  Alcotest.(check string)
    "spaces quoted" "msg=\"two words\""
    (line [ ("msg", Str "two words") ]);
  Alcotest.(check string)
    "equals quoted" "msg=\"k=v\""
    (line [ ("msg", Str "k=v") ]);
  Alcotest.(check string)
    "quotes escaped" "msg=\"say \\\"hi\\\"\""
    (line [ ("msg", Str "say \"hi\"") ]);
  Alcotest.(check string)
    "newline escaped" "msg=\"a\\nb\""
    (line [ ("msg", Str "a\nb") ])

(* ---------------- histogram buckets ---------------- *)

let test_histogram_buckets () =
  let b = Foc.Obs.Metrics.Histogram.bucket_of in
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) expect (b v))
    [
      (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3);
      (7, 3); (8, 4); (1023, 10); (1024, 11); (max_int, 62);
    ]

let test_histogram_observe () =
  let open Foc.Obs.Metrics in
  let r = create () in
  let h = histogram r "h" in
  List.iter (Histogram.observe h) [ 0; 1; 1; 3; 1000; -5 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "sum" 1000 (Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets"
    [ (0, 2); (1, 2); (3, 1); (1023, 1) ]
    (Histogram.nonzero_buckets h)

(* ---------------- registry ---------------- *)

let test_registry () =
  let open Foc.Obs.Metrics in
  let r = create () in
  let c = counter r "x.count" in
  Counter.inc c;
  Counter.add c 4;
  (* get-or-create returns the same underlying cell *)
  Counter.inc (counter r "x.count");
  Alcotest.(check int) "counter" 6 (Counter.value c);
  let g = gauge r "x.peak" in
  Gauge.set_max g 10;
  Gauge.set_max g 3;
  Alcotest.(check int) "gauge keeps max" 10 (Gauge.value g);
  let h = histogram r "x.ns" in
  Histogram.observe h 100;
  Alcotest.(check string)
    "line sorted with histogram scalars"
    "x.count=6 x.ns.count=1 x.ns.sum=100 x.peak=10" (line r);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: name in use: x.count") (fun () ->
      ignore (gauge r "x.count"));
  Alcotest.(check int) "report has one line per metric" 3
    (List.length (report r))

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  let v =
    Foc.Obs.span ~name:"outer" (fun () ->
        Foc.Obs.span ~name:"inner" (fun () -> 21) * 2)
  in
  (* a span closed by an exception must still be recorded *)
  (try
     Foc.Obs.span ~name:"raises" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "value passes through" 42 v;
  let evs = Foc.Obs.Trace.events () in
  Alcotest.(check (list string))
    "merged order: outer first (earlier start), inner nested"
    [ "outer"; "inner"; "raises" ]
    (List.map (fun (e : Foc.Obs.Trace.event) -> e.name) evs);
  Alcotest.(check (list int))
    "depths" [ 1; 2; 1 ]
    (List.map (fun (e : Foc.Obs.Trace.event) -> e.depth) evs);
  Alcotest.(check bool) "well nested" true (Foc.Obs.Trace.well_nested ());
  let totals = Foc.Obs.Trace.phase_totals () in
  let outer = List.assoc "outer" totals in
  let inner = List.assoc "inner" totals in
  Alcotest.(check bool)
    "outer self excludes inner" true
    (outer.Foc.Obs.Trace.self_ns
     = outer.Foc.Obs.Trace.total_ns - inner.Foc.Obs.Trace.total_ns);
  obs_off ();
  Alcotest.(check int) "clear drops events" 0
    (List.length (Foc.Obs.Trace.events ()));
  (* disabled spans record nothing and cost nothing observable *)
  Alcotest.(check int) "disabled span is transparent" 7
    (Foc.Obs.span ~name:"ghost" (fun () -> 7));
  Alcotest.(check int) "no ghost event" 0
    (List.length (Foc.Obs.Trace.events ()))

let test_span_parallel_labels () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  let out =
    Foc.Par.tabulate ~jobs:4 ~label:"work" 200 (fun i -> i + 1)
  in
  Alcotest.(check (array int))
    "values" (Array.init 200 (fun i -> i + 1)) out;
  let evs = Foc.Obs.Trace.events () in
  Alcotest.(check bool) "at least one labelled span" true
    (List.exists (fun (e : Foc.Obs.Trace.event) -> e.name = "work") evs);
  Alcotest.(check bool) "all spans labelled" true
    (List.for_all (fun (e : Foc.Obs.Trace.event) -> e.name = "work") evs);
  Alcotest.(check bool) "well nested across domains" true
    (Foc.Obs.Trace.well_nested ());
  obs_off ()

(* ---------------- trace export round-trip ---------------- *)

let test_export_round_trip () =
  obs_off ();
  Foc.Obs.Trace.enable ();
  Foc.Obs.span ~name:"alpha" (fun () ->
      Foc.Obs.span ~name:"beta \"q\"" ignore);
  let n_events = List.length (Foc.Obs.Trace.events ()) in
  let path = Filename.temp_file "foc_trace" ".json" in
  Foc.Obs.Trace.export_chrome path;
  obs_off ();
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Foc.Obs.Json.parse s with
  | Error e -> Alcotest.failf "exported trace does not parse: %s" e
  | Ok (Foc.Obs.Json.List evs) ->
      Alcotest.(check int) "event count survives" n_events (List.length evs);
      let names =
        List.map
          (fun ev ->
            (match Foc.Obs.Json.member "ph" ev with
            | Some (Foc.Obs.Json.Str "X") -> ()
            | _ -> Alcotest.fail "ph must be \"X\"");
            List.iter
              (fun k ->
                match Foc.Obs.Json.member k ev with
                | Some (Foc.Obs.Json.Num f) when f >= 0. -> ()
                | _ -> Alcotest.failf "bad field %s" k)
              [ "ts"; "dur"; "pid"; "tid" ];
            match Foc.Obs.Json.member "name" ev with
            | Some (Foc.Obs.Json.Str s) -> s
            | _ -> Alcotest.fail "missing name")
          evs
      in
      Alcotest.(check bool) "escaped name survives round-trip" true
        (List.mem "beta \"q\"" names)
  | Ok _ -> Alcotest.fail "exported trace is not a JSON array"

let test_json_parser () =
  let open Foc.Obs.Json in
  (match parse "{\"a\": [1, 2.5, true, null, \"x\\n\"]}" with
  | Ok (Obj [ ("a", List [ Num 1.; Num 2.5; Bool true; Null; Str "x\n" ]) ])
    ->
      ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad)
    [ ""; "{"; "[1,]"; "[1] trailing"; "\"unterminated"; "nul" ]

(* ---------------- engine metrics as a view ---------------- *)

let test_engine_stats_view () =
  obs_off ();
  let a =
    coloured 5 (Foc.Gen.random_bounded_degree (Random.State.make [| 5 |]) 60 3)
  in
  let eng = engine Foc.Engine.Cover 1 in
  ignore
    (Foc.Engine.eval_ground eng a
       (Foc.parse_term "#(x,y). (R(x) & E(x,y))"));
  let st = Foc.Engine.stats eng in
  Alcotest.(check bool) "basic terms counted" true (st.basic_terms > 0);
  Alcotest.(check bool) "covers counted" true (st.covers_built > 0);
  (* the registry view and the record view agree *)
  Alcotest.(check int)
    "registry backs the record" st.basic_terms
    Foc.Obs.Metrics.(
      Counter.value (counter (Foc.Engine.metrics eng) "engine.basic_terms"));
  let line = Foc.Engine.stats_line eng in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats_line mentions covers" true
    (contains line "engine.covers_built=")

let test_incremental_metrics () =
  obs_off ();
  let a =
    coloured 7 (Foc.Gen.random_tree (Random.State.make [| 7 |]) 50)
  in
  let cl =
    match
      Foc.Decompose.unary_count ~r:1 ~vars:[ "x"; "y" ]
        (Foc.parse_formula "E(x,y) & B(y)")
    with
    | Some cl -> cl
    | None -> Alcotest.fail "decomposition failed"
  in
  let inc = Foc.Incremental.create Foc.predicates a cl in
  let affected = Foc.Incremental.insert inc "E" [| 0; 49 |] in
  Alcotest.(check bool) "some anchors re-evaluated" true (affected > 0);
  let m = Foc.Incremental.metrics inc in
  let h = Foc.Obs.Metrics.histogram m "incr.update.affected" in
  Alcotest.(check int) "one update observed" 1
    (Foc.Obs.Metrics.Histogram.count h);
  Alcotest.(check int) "histogram sums the affected counts" affected
    (Foc.Obs.Metrics.Histogram.sum h);
  Alcotest.(check bool) "stats_line renders" true
    (String.length (Foc.Incremental.stats_line inc) > 0)

(* ---------------- obs on/off invariance ---------------- *)

let body_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "E(x,y)"; "E(y,x)"; "B(y)"; "R(y)"; "G(y)"; "R(x)" ] in
  let literal = map2 (fun neg a -> if neg then "!" ^ a else a) bool atom in
  let connective = oneofl [ " & "; " | " ] in
  map3
    (fun l1 op l2 -> "(" ^ l1 ^ op ^ l2 ^ ")")
    literal connective literal

let arb_case =
  QCheck.make
    ~print:(fun (n, seed, body) ->
      Printf.sprintf "n=%d seed=%d %s" n seed body)
    QCheck.Gen.(triple (int_range 8 40) (int_range 0 10000) body_gen)

let prop_invariant backend name =
  QCheck.Test.make ~name ~count:20 arb_case (fun (n, seed, body) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc.Gen.random_bounded_degree rng n 3) in
      let ground = Foc.parse_term (Printf.sprintf "#(x,y). %s" body) in
      let unary = Foc.parse_term (Printf.sprintf "#(y). %s" body) in
      let sentence =
        Foc.parse_formula (Printf.sprintf "#(x,y). %s >= 3" body)
      in
      let run jobs =
        let eng = engine backend jobs in
        let g = Foc.Engine.eval_ground eng a ground in
        let u = Foc.Engine.eval_unary eng a "x" unary in
        let c = Foc.Engine.check eng a sentence in
        (g, u, c)
      in
      let results jobs =
        obs_off ();
        let off = run jobs in
        Foc.Obs.Trace.enable ();
        Foc.Obs.set_timing true;
        let on = run jobs in
        obs_off ();
        off = on
      in
      results 1 && results 4)

let () =
  obs_off ();
  Alcotest.run "observability"
    [
      ( "primitives",
        [
          Alcotest.test_case "logfmt escaping" `Quick test_logfmt;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram observe" `Quick
            test_histogram_observe;
          Alcotest.test_case "metrics registry" `Quick test_registry;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + self time" `Quick test_span_nesting;
          Alcotest.test_case "parallel labels" `Quick
            test_span_parallel_labels;
          Alcotest.test_case "chrome export round-trip" `Quick
            test_export_round_trip;
        ] );
      ( "engine integration",
        [
          Alcotest.test_case "stats is a registry view" `Quick
            test_engine_stats_view;
          Alcotest.test_case "incremental counters" `Quick
            test_incremental_metrics;
        ] );
      ( "obs on = obs off",
        [
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Direct "direct: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Cover "cover: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant Foc.Engine.Hanf "hanf: obs on = off");
          QCheck_alcotest.to_alcotest
            (prop_invariant
               (Foc.Engine.Splitter { max_rounds = 3; small = 64 })
               "splitter: obs on = off");
        ] );
    ]
