(* Structure file I/O: round-trips, error reporting, and a CLI-format
   golden file. *)

open Foc_data

let sign = Signature.of_list [ ("E", 2); ("P", 1); ("Z", 0) ]

let sample =
  Structure.create sign ~order:5
    [
      ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 4; 0 |] ]);
      ("P", [ [| 3 |] ]);
      ("Z", [ [||] ]);
    ]

let test_roundtrip () =
  let text = Io.to_string sample in
  match Io.of_string text with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (Structure.equal sample back)
  | Error e -> Alcotest.fail e

let test_golden_parse () =
  let src =
    "# a small structure\n\
     order 4\n\
     rel E 2\n\
     rel P 1\n\
     E 0 1   # an edge\n\
     E 1 2\n\
     P 3\n\n"
  in
  match Io.of_string src with
  | Error e -> Alcotest.fail e
  | Ok a ->
      Alcotest.(check int) "order" 4 (Structure.order a);
      Alcotest.(check bool) "edge" true (Structure.mem a "E" [| 0; 1 |]);
      Alcotest.(check bool) "colour" true (Structure.mem a "P" [| 3 |])

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  go 0

let expect_error src fragment =
  match Io.of_string src with
  | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment e)
        true (contains e fragment)

let test_errors () =
  expect_error "rel E 2\nE 0 1\n" "order";
  expect_error "order 3\nE 0 1\n" "undeclared";
  expect_error "order 3\nrel E 2\nE 0\n" "arity";
  expect_error "order 3\nrel E 2\nE 0 9\n" "universe";
  expect_error "order 3\nrel E 2\nE a b\n" "tuple"

let prop_roundtrip_random =
  QCheck.Test.make ~name:"io roundtrip on random structures" ~count:50
    QCheck.(pair (int_range 1 15) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = Db_gen.random_structure rng sign ~order:n ~tuples:(2 * n) in
      match Io.of_string (Io.to_string a) with
      | Ok back -> Structure.equal a back
      | Error _ -> false)

let test_file_roundtrip () =
  let path = Filename.temp_file "foc_io" ".foc" in
  Io.save path sample;
  (match Io.load path with
  | Ok back -> Alcotest.(check bool) "file roundtrip" true (Structure.equal sample back)
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  match Io.load "/nonexistent/foc/file" with
  | Ok _ -> Alcotest.fail "should not load"
  | Error _ -> ()

let () =
  Alcotest.run "foc_data io"
    [
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "golden parse" `Quick test_golden_parse;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
    ]
