(* Tests for the syntactic cl-normal form (Theorem 6.8) and the incremental
   maintenance prototype (Section 9, question 2). *)

open Foc_logic
module Structure = Foc_data.Structure

let preds = Pred.standard
let parse s = Parser.formula preds s

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc_data.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

(* ---------------- Theorem 6.8 normal form ---------------- *)

let nf_sentences =
  [
    "exists x y. E(x,y) & B(y)";
    "exists x. B(x) & !(exists y. E(x,y))";
    "!(exists x y. R(x) & B(y))";
    "(exists x. R(x)) & !(exists x y. E(x,y) & E(y,x))";
    "forall x. B(x) | !B(x)";
  ]

let test_normal_form_equivalence () =
  let rng = Random.State.make [| 41 |] in
  for seed = 1 to 6 do
    let a =
      coloured seed (Foc_graph.Gen.random_bounded_degree rng 12 3)
    in
    List.iter
      (fun src ->
        let phi = parse src in
        match Foc_local.Normal_form.sentence phi with
        | None -> Alcotest.fail ("no normal form for " ^ src)
        | Some nf ->
            Alcotest.(check bool)
              (Printf.sprintf "%s (seed %d)" src seed)
              (Foc_eval.Naive.sentence preds a phi)
              (Foc_eval.Naive.sentence preds a nf))
      nf_sentences
  done

let test_normal_form_shape () =
  let phi = parse "exists x y. E(x,y) & B(y)" in
  match Foc_local.Normal_form.sentence phi with
  | None -> Alcotest.fail "no normal form"
  | Some nf ->
      (* the result is a FOC1({P≥1}) statement: Boolean combination of
         "g >= 1" with no plain quantifier prefix left *)
      Alcotest.(check bool) "is FOC1" true (Fragment.is_foc1 nf);
      let has_ge1 =
        Ast.exists_subformula
          (function Ast.Pred ("ge1", _) -> true | _ -> false)
          nf
      in
      Alcotest.(check bool) "has a g >= 1 statement" true has_ge1

let test_to_ast_agrees () =
  let rng = Random.State.make [| 43 |] in
  let a = coloured 43 (Foc_graph.Gen.random_tree rng 25) in
  let body = parse "E(u,v) | (R(u) & B(v))" in
  let r =
    match Foc_local.Locality.formula_radius body with
    | Foc_local.Locality.Local r -> r
    | Foc_local.Locality.Nonlocal w -> Alcotest.fail w
  in
  match Foc_local.Decompose.ground_count ~r ~vars:[ "u"; "v" ] body with
  | None -> Alcotest.fail "decomposition failed"
  | Some cl ->
      let ctx = Foc_local.Pattern_count.make_ctx preds a ~r in
      let via_clterm = Foc_local.Clterm.eval_ground ctx cl in
      let via_ast =
        Foc_eval.Relalg.term_value preds a [] (Foc_local.Normal_form.to_ast cl)
      in
      Alcotest.(check int) "to_ast evaluates equally" via_clterm via_ast

(* ---------------- incremental maintenance ---------------- *)

let degree_clterm () =
  let body = parse "E(x,y) & B(y)" in
  match Foc_local.Decompose.unary_count ~r:1 ~vars:[ "x"; "y" ] body with
  | Some cl -> cl
  | None -> Alcotest.fail "decomposition failed"

let recompute preds a cl =
  let ctx = Foc_local.Pattern_count.make_ctx preds a ~r:1 in
  Foc_local.Clterm.eval_unary ctx cl

let test_incremental_inserts () =
  let rng = Random.State.make [| 47 |] in
  let a = coloured 47 (Foc_graph.Gen.random_tree rng 60) in
  let cl = degree_clterm () in
  let inc = Foc_nd.Incremental.create preds a cl in
  Alcotest.(check (array int)) "initial" (recompute preds a cl)
    (Foc_nd.Incremental.values inc);
  (* a mixed batch of edge and colour updates *)
  for step = 1 to 25 do
    let n = Structure.order (Foc_nd.Incremental.structure inc) in
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let affected =
      match Random.State.int rng 4 with
      | 0 -> Foc_nd.Incremental.insert inc "E" [| u; v |]
      | 1 when u <> v -> Foc_nd.Incremental.delete inc "E" [| u; v |]
      | 2 -> Foc_nd.Incremental.insert inc "B" [| u |]
      | _ -> Foc_nd.Incremental.delete inc "B" [| u |]
    in
    Alcotest.(check bool) "some anchors touched" true (affected >= 0);
    let expected =
      recompute preds (Foc_nd.Incremental.structure inc) cl
    in
    Alcotest.(check (array int))
      (Printf.sprintf "step %d" step)
      expected
      (Foc_nd.Incremental.values inc)
  done

(* A polynomial with a width-0 ground basic: the sentence factor
   [#(). exists y. B(y)] multiplying the degree term. *)
let width0_clterm () =
  let sentence = parse "exists y. B(y)" in
  let b0 =
    Foc_local.Clterm.basic
      ~pattern:(Foc_graph.Pattern.make 0 [])
      ~radius:1 ~vars:[] ~body:sentence
  in
  Foc_local.Clterm.(Add (Mul (Ground b0, degree_clterm ()), Const 1))

let test_incremental_width0 () =
  (* regression: a width-0 ground basic used to make [Incremental.create]
     raise [Invalid_argument] from [eval_leaf_at]; it must instead be
     maintained as a sentence whose truth tracks the updates *)
  let a = coloured 59 (Foc_graph.Gen.path 12) in
  let cl = width0_clterm () in
  let inc = Foc_nd.Incremental.create preds a cl in
  Alcotest.(check (array int))
    "initial" (recompute preds a cl)
    (Foc_nd.Incremental.values inc);
  (* drain B completely: "exists y. B(y)" flips to false along the way, and
     the maintained values must track every step *)
  for u = 0 to 11 do
    ignore (Foc_nd.Incremental.delete inc "B" [| u |]);
    let a' = Foc_nd.Incremental.structure inc in
    Alcotest.(check (array int))
      (Printf.sprintf "after deleting B(%d)" u)
      (recompute preds a' cl)
      (Foc_nd.Incremental.values inc)
  done;
  ignore (Foc_nd.Incremental.insert inc "B" [| 3 |]);
  let a' = Foc_nd.Incremental.structure inc in
  Alcotest.(check (array int))
    "after re-inserting B(3)"
    (recompute preds a' cl)
    (Foc_nd.Incremental.values inc)

let test_incremental_locality () =
  (* an update at one end of a long path must not touch anchors at the
     other end *)
  let a = coloured 53 (Foc_graph.Gen.path 200) in
  let cl = degree_clterm () in
  let inc = Foc_nd.Incremental.create preds a cl in
  let touched = Foc_nd.Incremental.insert inc "B" [| 0 |] in
  Alcotest.(check bool)
    (Printf.sprintf "few anchors touched (%d)" touched)
    true (touched <= 16)

let prop_incremental_random =
  QCheck.Test.make ~name:"incremental = recompute under random updates"
    ~count:15
    QCheck.(pair (int_range 8 40) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      let cl = degree_clterm () in
      let inc = Foc_nd.Incremental.create preds a cl in
      let ok = ref true in
      for _ = 1 to 10 do
        let u = Random.State.int rng n and v = Random.State.int rng n in
        ignore
          (if Random.State.bool rng then
             Foc_nd.Incremental.insert inc "E" [| u; v |]
           else Foc_nd.Incremental.delete inc "E" [| u; v |]);
        if
          Foc_nd.Incremental.values inc
          <> recompute preds (Foc_nd.Incremental.structure inc) cl
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "normal form & incremental"
    [
      ( "theorem 6.8",
        [
          Alcotest.test_case "equivalence" `Quick test_normal_form_equivalence;
          Alcotest.test_case "shape" `Quick test_normal_form_shape;
          Alcotest.test_case "to_ast" `Quick test_to_ast_agrees;
        ] );
      ( "incremental (§9.2)",
        [
          Alcotest.test_case "inserts/deletes" `Quick test_incremental_inserts;
          Alcotest.test_case "width-0 ground basic" `Quick
            test_incremental_width0;
          Alcotest.test_case "update locality" `Quick test_incremental_locality;
          QCheck_alcotest.to_alcotest prop_incremental_random;
        ] );
    ]
