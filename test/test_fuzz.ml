(* Deep fuzzing of the whole pipeline: randomly generated guarded FOC1
   expressions evaluated by the localized engine (all four back-ends)
   against the relational-algebra baseline on random sparse structures.

   The generator produces expressions inside the guarded fragment on
   purpose — so the localized path is actually exercised (plans are checked
   to be fallback-free for a large share of the samples) — but the
   agreement property itself never assumes that: whatever route the engine
   takes must produce baseline-equal answers. *)

open Foc_logic
open QCheck.Gen

let preds = Pred.standard
let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1); ("C", 1); ("R", 1) ]

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  let n = Foc_graph.Graph.order g in
  let colour p =
    List.filter_map
      (fun v -> if Random.State.float rng 1.0 < p then Some [| v |] else None)
      (List.init n (fun i -> i))
  in
  let edges =
    List.concat_map
      (fun (u, v) -> [ [| u; v |]; [| v; u |] ])
      (Foc_graph.Graph.edges g)
  in
  Foc_data.Structure.create sign ~order:n
    [ ("E", edges); ("B", colour 0.4); ("C", colour 0.3); ("R", colour 0.25) ]

(* ---------------- the guarded generator ---------------- *)

let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Printf.sprintf "v%d" !fresh_counter

let unary_rel = oneofl [ "B"; "C"; "R" ]

(* a guarded body over the given in-scope variables *)
let rec gen_body ~depth vars =
  let atom =
    oneof
      ([
         map2 (fun r v -> Ast.Rel (r, [| v |])) unary_rel (oneofl vars);
         map2 (fun u v -> Ast.Rel ("E", [| u; v |])) (oneofl vars) (oneofl vars);
       ]
      @
      if List.length vars >= 2 then
        [
          map3
            (fun u v d -> Ast.Dist (u, v, d))
            (oneofl vars) (oneofl vars) (int_range 0 2);
          map2 (fun u v -> Ast.Eq (u, v)) (oneofl vars) (oneofl vars);
        ]
      else [])
  in
  if depth <= 0 then atom
  else
    frequency
      [
        (3, atom);
        (2, map2 (fun f g -> Ast.And (f, g)) (gen_body ~depth:(depth - 1) vars) (gen_body ~depth:(depth - 1) vars));
        (2, map2 (fun f g -> Ast.Or (f, g)) (gen_body ~depth:(depth - 1) vars) (gen_body ~depth:(depth - 1) vars));
        (1, map (fun f -> Ast.Neg f) (gen_body ~depth:(depth - 1) vars));
        ( 2,
          (* guarded ∃z (E(v,z) ∧ body) *)
          oneofl vars >>= fun anchor ->
          let z = fresh_var () in
          gen_body ~depth:(depth - 1) (z :: vars) >>= fun inner ->
          return (Ast.Exists (z, Ast.And (Ast.Rel ("E", [| anchor; z |]), inner)))
        );
        ( 1,
          (* guarded ∀z (dist ≤ 1 → body) *)
          oneofl vars >>= fun anchor ->
          let z = fresh_var () in
          gen_body ~depth:(depth - 1) (z :: vars) >>= fun inner ->
          return
            (Ast.Forall (z, Ast.implies (Ast.Dist (anchor, z, 1)) inner)) );
      ]

let gen_ground_term ~max_k =
  int_range 1 max_k >>= fun k ->
  let vars = List.init k (fun _ -> fresh_var ()) in
  let depth = if k >= 3 then 1 else 2 in
  gen_body ~depth vars >>= fun body -> return (Ast.Count (vars, body))

let gen_unary_term x ~max_k =
  int_range 1 max_k >>= fun k ->
  let vars = List.init k (fun _ -> fresh_var ()) in
  let depth = if k >= 2 then 1 else 2 in
  gen_body ~depth (x :: vars) >>= fun body ->
  return (Ast.Count (vars, body))

(* optionally wrap in a numerical condition and count again (#-depth 2) *)
let gen_nested_ground =
  let x = "x0" in
  gen_unary_term x ~max_k:2 >>= fun t ->
  oneofl [ "ge1"; "prime"; "even" ] >>= fun p ->
  return (Ast.Count ([ x ], Ast.Pred (p, [ t ])))

let gen_structure =
  pair (int_range 4 14) (int_range 0 1_000_000) >>= fun (n, seed) ->
  let rng = Random.State.make [| n; seed |] in
  let graph =
    match Random.State.int rng 3 with
    | 0 -> Foc_graph.Gen.random_tree rng n
    | 1 -> Foc_graph.Gen.random_bounded_degree rng n 3
    | _ ->
        let side = max 2 (int_of_float (sqrt (float_of_int n))) in
        Foc_graph.Gen.grid side side
  in
  return (coloured seed graph)

let print_case (t, a) =
  Format.asprintf "%s@.on order-%d structure"
    (Pp.term_to_string t)
    (Foc_data.Structure.order a)

let engines =
  [
    ("direct", fun () -> Foc_nd.Engine.create ());
    ( "cover",
      fun () ->
        Foc_nd.Engine.create
          ~config:
            { Foc_nd.Engine.default_config with backend = Foc_nd.Engine.Cover }
          () );
    ( "splitter",
      fun () ->
        Foc_nd.Engine.create
          ~config:
            {
              Foc_nd.Engine.default_config with
              backend = Foc_nd.Engine.Splitter { max_rounds = 1; small = 10 };
            }
          () );
    ( "hanf",
      fun () ->
        Foc_nd.Engine.create
          ~config:
            { Foc_nd.Engine.default_config with backend = Foc_nd.Engine.Hanf }
          () );
  ]

let agreement_test name gen_term count =
  QCheck.Test.make ~name ~count
    (QCheck.make ~print:print_case (pair gen_term gen_structure))
    (fun (t, a) ->
      let expected = Foc_eval.Relalg.term_value preds a [] t in
      List.for_all
        (fun (ename, make) ->
          let got = Foc_nd.Engine.eval_ground (make ()) a t in
          if got <> expected then
            QCheck.Test.fail_reportf "%s: %d vs baseline %d" ename got
              expected
          else true)
        engines)

let prop_ground = agreement_test "fuzz: ground guarded terms, 4 back-ends"
    (gen_ground_term ~max_k:3) 60

let prop_nested =
  agreement_test "fuzz: #-depth-2 guarded terms, 4 back-ends" gen_nested_ground
    30

let prop_unary =
  QCheck.Test.make ~name:"fuzz: unary guarded terms, direct back-end"
    ~count:50
    (QCheck.make ~print:print_case
       (pair (gen_unary_term "x0" ~max_k:2) gen_structure))
    (fun (t, a) ->
      let eng = Foc_nd.Engine.create () in
      let got = Foc_nd.Engine.eval_unary eng a "x0" t in
      let counts = Foc_eval.Relalg.term_counts preds a t in
      let ok = ref true in
      for v = 0 to Foc_data.Structure.order a - 1 do
        if got.(v) <> Foc_eval.Counts.get counts (Var.Map.singleton "x0" v)
        then ok := false
      done;
      !ok)

(* a sanity meter: a decent share of generated kernels should be localized *)
let prop_generator_hits_fragment =
  QCheck.Test.make ~name:"fuzz generator mostly stays in the fragment"
    ~count:1
    (QCheck.make (return ()))
    (fun () ->
      let rng = Random.State.make [| 1234 |] in
      let localized = ref 0 in
      for _ = 1 to 100 do
        let t = generate1 ~rand:rng (gen_ground_term ~max_k:3) in
        let plan = Foc_nd.Plan.term_plan t in
        if plan.Foc_nd.Plan.strictly_localized then incr localized
      done;
      !localized >= 60)

let () =
  Alcotest.run "fuzz"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_ground;
          QCheck_alcotest.to_alcotest prop_nested;
          QCheck_alcotest.to_alcotest prop_unary;
          QCheck_alcotest.to_alcotest prop_generator_hits_fragment;
        ] );
    ]
