(* Dedicated suite for the Removal Lemmas (7.8 and 7.9): formula rewriting
   φ → φ̃_V, ground- and unary-term decompositions, over random structures
   and the gamut of pinning patterns. *)

open Foc_logic
open Foc_local
module Structure = Foc_data.Structure
module Rop = Foc_data.Removal_op

let preds = Pred.standard
let parse s = Parser.formula preds s

let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1); ("C", 1); ("T", 3) ]

let random_structure seed n =
  let rng = Random.State.make [| seed |] in
  let pairs k =
    List.init k (fun _ ->
        [| Random.State.int rng n; Random.State.int rng n |])
  in
  let triples k =
    List.init k (fun _ ->
        [|
          Random.State.int rng n; Random.State.int rng n; Random.State.int rng n;
        |])
  in
  let unary p =
    List.filter_map
      (fun v -> if Random.State.float rng 1.0 < p then Some [| v |] else None)
      (List.init n (fun i -> i))
  in
  Structure.create sign ~order:n
    [ ("E", pairs (2 * n)); ("B", unary 0.4); ("C", unary 0.3); ("T", triples n) ]

let formulas =
  [
    "E(x,y)";
    "B(x) & C(y)";
    "E(x,y) | E(y,x)";
    "!E(x,x)";
    "dist(x,y) <= 1";
    "dist(x,y) <= 3";
    "exists z. E(x,z) & E(z,y)";
    "forall z. dist(x,z) <= 1 -> (B(z) | C(y))";
    "exists z. T(x,z,y)";
  ]

(* exhaustive Lemma 7.8 check over one structure *)
let check_formula_equivalence a r d =
  let b = Rop.apply a ~r ~d in
  List.iter
    (fun src ->
      let phi = parse src in
      for x = 0 to Structure.order a - 1 do
        for y = 0 to Structure.order a - 1 do
          let pinned =
            Var.Set.of_list
              (List.filter_map
                 (fun (v, e) -> if e = d then Some v else None)
                 [ ("x", x); ("y", y) ])
          in
          let phi' = Removal.formula ~r ~pinned phi in
          let env' =
            Foc_eval.Naive.env_of_list
              (List.filter_map
                 (fun (v, e) ->
                   if e = d then None else Some (v, Rop.rename ~d e))
                 [ ("x", x); ("y", y) ])
          in
          let lhs =
            Foc_eval.Naive.formula preds a (Foc_eval.Naive.env_of_list [ ("x", x); ("y", y) ]) phi
          in
          let rhs = Foc_eval.Naive.formula preds b env' phi' in
          if lhs <> rhs then
            Alcotest.failf "%s at (x=%d, y=%d), d=%d: %b vs %b" src x y d lhs
              rhs
        done
      done)
    formulas

let test_lemma_7_8 () =
  let a = random_structure 1 9 in
  check_formula_equivalence a 3 0;
  check_formula_equivalence a 3 4;
  check_formula_equivalence a 3 8

let test_pinned_shapes () =
  (* static resolution of equalities and relation atoms *)
  let pinned = Var.Set.singleton "x" in
  Alcotest.(check bool) "Eq both pinned" true
    (Removal.formula ~r:1 ~pinned:(Var.Set.of_list [ "x"; "y" ])
       (Ast.Eq ("x", "y"))
    = Ast.True);
  Alcotest.(check bool) "Eq one pinned" true
    (Removal.formula ~r:1 ~pinned (Ast.Eq ("x", "y")) = Ast.False);
  (match Removal.formula ~r:1 ~pinned (parse "E(x,y)") with
  | Ast.Rel (name, [| "y" |]) ->
      Alcotest.(check string) "tilde symbol" (Rop.tilde_name "E" [ 1 ]) name
  | f -> Alcotest.failf "unexpected shape %s" (Pp.formula_to_string f));
  (* dist with one side pinned becomes a sphere atom *)
  match Removal.formula ~r:2 ~pinned (Ast.Dist ("x", "y", 2)) with
  | Ast.Rel (name, [| "y" |]) ->
      Alcotest.(check string) "sphere symbol" (Rop.sphere_name 2) name
  | f -> Alcotest.failf "unexpected dist shape %s" (Pp.formula_to_string f)

let test_unsupported () =
  Alcotest.check_raises "dist beyond radius"
    (Removal.Unsupported "distance atom with bound 5 > removal radius 2")
    (fun () ->
      ignore (Removal.formula ~r:2 ~pinned:Var.Set.empty (Ast.Dist ("x", "y", 5))));
  match
    Removal.formula ~r:2 ~pinned:Var.Set.empty (parse "prime(#(y). E(x,y))")
  with
  | exception Removal.Unsupported _ -> ()
  | _ -> Alcotest.fail "numerical predicate should be unsupported"

let test_lemma_7_9_ground () =
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 15 do
    let n = 5 + Random.State.int rng 8 in
    let a = random_structure (Random.State.int rng 10000) n in
    let d = Random.State.int rng n in
    let b = Rop.apply a ~r:2 ~d in
    List.iter
      (fun (vars, src) ->
        let body = parse src in
        let parts = Removal.ground_parts ~r:2 ~vars body in
        Alcotest.(check int)
          "2^k parts"
          (1 lsl List.length vars)
          (List.length parts);
        let lhs = Foc_eval.Relalg.count preds a vars body in
        let rhs =
          List.fold_left
            (fun acc (vs, phi) -> acc + Foc_eval.Relalg.count preds b vs phi)
            0 parts
        in
        Alcotest.(check int) (src ^ " ground total") lhs rhs)
      [
        ([ "x"; "y" ], "E(x,y)");
        ([ "x"; "y" ], "B(x) & C(y)");
        ([ "x" ], "exists z. E(x,z) & B(z)");
        ([ "x"; "y" ], "dist(x,y) <= 2");
      ]
  done

let test_lemma_7_9_unary () =
  let rng = Random.State.make [| 6 |] in
  for _ = 1 to 10 do
    let n = 5 + Random.State.int rng 6 in
    let a = random_structure (Random.State.int rng 10000) n in
    let d = Random.State.int rng n in
    let b = Rop.apply a ~r:2 ~d in
    let vars = [ "x"; "y" ] in
    let body = parse "E(x,y) | (B(x) & C(y))" in
    let `At_removed gparts, `Elsewhere uparts =
      Removal.unary_parts ~r:2 ~vars body
    in
    (* value at the removed element *)
    let expected_at_d =
      Foc_eval.Relalg.term_value preds a
        [ ("x", d) ]
        (Ast.Count ([ "y" ], body))
    in
    let got_at_d =
      List.fold_left
        (fun acc (vs, phi) -> acc + Foc_eval.Relalg.count preds b vs phi)
        0 gparts
    in
    Alcotest.(check int) "u(d)" expected_at_d got_at_d;
    (* values at survivors *)
    for e = 0 to n - 1 do
      if e <> d then begin
        let e' = Rop.rename ~d e in
        let expected =
          Foc_eval.Relalg.term_value preds a
            [ ("x", e) ]
            (Ast.Count ([ "y" ], body))
        in
        let got =
          List.fold_left
            (fun acc (vs, phi) ->
              match vs with
              | x1 :: counted ->
                  Foc_eval.Relalg.term_value preds b
                    [ (x1, e') ]
                    (Ast.Count (counted, phi))
                  + acc
              | [] -> acc)
            0 uparts
        in
        Alcotest.(check int) (Printf.sprintf "u(%d)" e) expected got
      end
    done
  done

let prop_removal_formula_random =
  QCheck.Test.make ~name:"Lemma 7.8 on random structures" ~count:25
    QCheck.(pair (int_range 4 10) (int_range 0 100000))
    (fun (n, seed) ->
      let a = random_structure seed n in
      let rng = Random.State.make [| seed; 1 |] in
      let d = Random.State.int rng n in
      let b = Rop.apply a ~r:2 ~d in
      let phi = parse "exists z. (E(x,z) & dist(z,y) <= 1) | B(x)" in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          let pinned =
            Var.Set.of_list
              (List.filter_map
                 (fun (v, e) -> if e = d then Some v else None)
                 [ ("x", x); ("y", y) ])
          in
          let phi' = Removal.formula ~r:2 ~pinned phi in
          let env' =
            Foc_eval.Naive.env_of_list
              (List.filter_map
                 (fun (v, e) ->
                   if e = d then None else Some (v, Rop.rename ~d e))
                 [ ("x", x); ("y", y) ])
          in
          let lhs =
            Foc_eval.Naive.formula preds a
              (Foc_eval.Naive.env_of_list [ ("x", x); ("y", y) ])
              phi
          in
          if lhs <> Foc_eval.Naive.formula preds b env' phi' then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "foc_local removal"
    [
      ( "lemma 7.8",
        [
          Alcotest.test_case "exhaustive small" `Quick test_lemma_7_8;
          Alcotest.test_case "pinned shapes" `Quick test_pinned_shapes;
          Alcotest.test_case "unsupported inputs" `Quick test_unsupported;
          QCheck_alcotest.to_alcotest prop_removal_formula_random;
        ] );
      ( "lemma 7.9",
        [
          Alcotest.test_case "ground decomposition" `Quick test_lemma_7_9_ground;
          Alcotest.test_case "unary decomposition" `Quick test_lemma_7_9_unary;
        ] );
    ]
