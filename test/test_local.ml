(* Tests for the locality machinery: radius certification, ball-restricted
   evaluation, the Feferman-Vaught split, and — crucially — the Lemma 6.4
   decomposition checked against the relational-algebra engine. *)

open Foc_logic
open Foc_local
open Ast

let preds = Pred.standard
let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s

let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1); ("C", 1) ]

let structure_of_graph_coloured rng g =
  let base = Foc_data.Structure.of_graph g in
  let n = Foc_data.Structure.order base in
  let colour p =
    List.filter_map
      (fun v -> if Random.State.float rng 1.0 < p then Some [| v |] else None)
      (List.init n (fun i -> i))
  in
  Foc_data.Structure.create sign ~order:n
    [
      ( "E",
        Foc_data.Tuple.Set.elements (Foc_data.Structure.rel base "E")
        |> List.map (fun t -> t) );
      ("B", colour 0.4);
      ("C", colour 0.3);
    ]

(* ---------------- locality radius ---------------- *)

let check_local name expected phi =
  match Locality.formula_radius phi with
  | Locality.Local r -> Alcotest.(check int) name expected r
  | Locality.Nonlocal why -> Alcotest.fail (name ^ ": unexpectedly nonlocal: " ^ why)

let check_nonlocal name phi =
  match Locality.formula_radius phi with
  | Locality.Local r ->
      Alcotest.fail (Printf.sprintf "%s: unexpectedly local (r=%d)" name r)
  | Locality.Nonlocal _ -> ()

let test_radius_atoms () =
  check_local "atom" 0 (parse "E(x,y)");
  check_local "dist" 3 (parse "dist(x,y) <= 3");
  check_local "bool" 2 (parse "E(x,y) | dist(x,y) <= 2")

let test_radius_quantifiers () =
  (* ∃y (E(x,y) ∧ B(y)): y guarded at distance 1 *)
  check_local "guarded exists" 1 (parse "exists y. E(x,y) & B(y)");
  (* chain: ∃y∃z (E(x,y) ∧ E(y,z) ∧ B(z)) *)
  check_local "guard chain" 2 (parse "exists y z. E(x,y) & E(y,z) & B(z)");
  (* guarded forall: ∀y (dist(x,y) ≤ 2 → B(y)) *)
  check_local "guarded forall" 4 (parse "forall y. dist(x,y) <= 2 -> B(y)");
  check_nonlocal "unguarded exists" (parse "exists y. B(y) & B(x)");
  check_nonlocal "unguarded forall" (parse "forall y. B(y)")

let test_radius_terms () =
  (* t_B(x) = #(y).(E(x,y) ∧ B(y)) — Example 5.4 *)
  (match Locality.term_radius (parse_t "#(y). (E(x,y) & B(y))") with
  | Locality.Local r -> Alcotest.(check int) "t_B radius" 1 r
  | Locality.Nonlocal w -> Alcotest.fail w);
  (* t_Δ(x): triangles through x — chained guards *)
  (match Locality.term_radius (parse_t "#(y,z). (E(x,y) & E(y,z) & E(z,x))") with
  | Locality.Local r -> Alcotest.(check bool) "t_Δ local" true (r >= 1)
  | Locality.Nonlocal w -> Alcotest.fail w);
  (* ground term: global count *)
  (match Locality.term_radius (parse_t "#(x). B(x)") with
  | Locality.Local _ -> Alcotest.fail "ground term cannot be local"
  | Locality.Nonlocal _ -> ());
  (* unguarded counted variable *)
  match Locality.term_radius (parse_t "#(y). (B(y) | E(x,x))") with
  | Locality.Local _ -> Alcotest.fail "unguarded count cannot be local"
  | Locality.Nonlocal _ -> ()

let test_radius_pred_formula () =
  (* Prime(t_B(x)) is local around x *)
  check_local "pred of local term" 1 (parse "prime(#(y). (E(x,y) & B(y)))");
  (* Prime of a ground count is global *)
  check_nonlocal "pred of ground term" (parse "prime(#(y). B(y))")

(* ---------------- local evaluation agreement ---------------- *)

let test_local_eval_agreement () =
  let rng = Random.State.make [| 23 |] in
  let g = Foc_graph.Gen.random_tree rng 40 in
  let a = structure_of_graph_coloured rng g in
  let formulas =
    [
      "exists y. E(x,y) & B(y)";
      "forall y. dist(x,y) <= 2 -> (B(y) | C(y))";
      "prime(#(y). E(x,y))";
      "B(x) & (exists y z. E(x,y) & E(y,z) & C(z))";
      "(#(y). (E(x,y) & B(y))) >= 1";
    ]
  in
  List.iter
    (fun s ->
      let f = parse s in
      for v = 0 to Foc_data.Structure.order a - 1 do
        let env = Foc_eval.Naive.env_of_list [ ("x", v) ] in
        Alcotest.(check bool)
          (Printf.sprintf "%s @ %d" s v)
          (Foc_eval.Naive.formula preds a env f)
          (Local_eval.holds preds a env f)
      done)
    formulas

let test_local_eval_uses_balls () =
  let rng = Random.State.make [| 29 |] in
  let g = Foc_graph.Gen.path 200 in
  let a = structure_of_graph_coloured rng g in
  let stats = Local_eval.create_stats () in
  let f = parse "exists y. E(x,y) & B(y)" in
  let env = Foc_eval.Naive.env_of_list [ ("x", 100) ] in
  ignore (Local_eval.holds ~stats preds a env f);
  Alcotest.(check int) "no unguarded scans" 0 stats.unguarded_scans;
  Alcotest.(check bool) "few candidates" true (stats.candidates_tried <= 5)

(* ---------------- split ---------------- *)

let eval_blocks a blocks envl envr =
  (* value of ⋁ λ∧ρ under combined env, plus disjointness check *)
  let holding =
    List.filter
      (fun (l, rho) ->
        Foc_eval.Naive.formula preds a envl l
        && Foc_eval.Naive.formula preds a envr rho)
      blocks
  in
  (List.length holding > 0, List.length holding <= 1)

let test_split_product () =
  let theta = parse "B(x) & C(y)" in
  let side_of v = if v = "x" then Split.L else Split.R in
  match Split.split ~r:0 ~side_of theta with
  | None -> Alcotest.fail "split failed"
  | Some blocks ->
      Alcotest.(check bool) "nonempty" true (List.length blocks >= 1);
      List.iter
        (fun (l, rho) ->
          Alcotest.(check bool) "lambda left-pure" true
            (Var.Set.subset (free_formula l) (Var.Set.singleton "x"));
          Alcotest.(check bool) "rho right-pure" true
            (Var.Set.subset (free_formula rho) (Var.Set.singleton "y")))
        blocks

let test_split_semantics () =
  let rng = Random.State.make [| 31 |] in
  (* two far-apart paths glued in one structure: x on one, y on the other *)
  let g = Foc_graph.Graph.union (Foc_graph.Gen.path 6) (Foc_graph.Gen.path 6) in
  let a = structure_of_graph_coloured rng g in
  let side_of v = if v = "x" then Split.L else Split.R in
  let cases =
    [ "B(x) & C(y)"; "B(x) | C(y)"; "!(B(x) & C(y))";
      "(exists u. E(x,u) & B(u)) & (C(y) | B(y))";
      "E(x,y)" (* cross atom: always false under the promise *) ]
  in
  List.iter
    (fun s ->
      let theta = parse s in
      match Split.split ~r:1 ~side_of theta with
      | None -> Alcotest.fail ("split failed on " ^ s)
      | Some blocks ->
          (* x ranges over the left path (0..5), y over the right (6..11):
             all cross distances are infinite, promise holds *)
          for vx = 0 to 5 do
            for vy = 6 to 11 do
              let env =
                Foc_eval.Naive.env_of_list [ ("x", vx); ("y", vy) ]
              in
              let expected = Foc_eval.Naive.formula preds a env theta in
              let got, disjoint = eval_blocks a blocks env env in
              Alcotest.(check bool) (s ^ " equivalent") expected got;
              Alcotest.(check bool) (s ^ " disjoint") true disjoint
            done
          done)
    cases

(* ---------------- pattern counting ---------------- *)

let test_pattern_count_edges () =
  let rng = Random.State.make [| 37 |] in
  let g = Foc_graph.Gen.cycle 8 in
  let a = structure_of_graph_coloured rng g in
  let ctx = Pattern_count.make_ctx preds a ~r:0 in
  (* ordered pairs at distance <= 1 satisfying E: exactly the directed edges *)
  let edge_pattern = Foc_graph.Pattern.make 2 [ (0, 1) ] in
  let count =
    Pattern_count.ground ctx ~pattern:edge_pattern ~vars:[ "u"; "v" ]
      ~body:(parse "E(u,v)")
  in
  Alcotest.(check int) "close E-pairs = 16" 16 count;
  (* per-anchor: each cycle vertex sees 2 outgoing close E-edges *)
  let per =
    Pattern_count.per_anchor ctx ~pattern:edge_pattern ~vars:[ "u"; "v" ]
      ~body:(parse "E(u,v)")
  in
  Array.iter (fun c -> Alcotest.(check int) "deg 2" 2 c) per;
  (* far pattern is not connected: ground on it must be rejected *)
  Alcotest.check_raises "disconnected rejected"
    (Invalid_argument "Pattern_count: pattern not connected") (fun () ->
      ignore
        (Pattern_count.ground ctx
           ~pattern:(Foc_graph.Pattern.make 2 [])
           ~vars:[ "u"; "v" ] ~body:Ast.True))

let test_pattern_count_sentence () =
  let rng = Random.State.make [| 41 |] in
  let a = structure_of_graph_coloured rng (Foc_graph.Gen.path 5) in
  let ctx = Pattern_count.make_ctx preds a ~r:0 in
  let empty = Foc_graph.Pattern.make 0 [] in
  Alcotest.(check int) "true sentence" 1
    (Pattern_count.ground ctx ~pattern:empty ~vars:[] ~body:Ast.True);
  Alcotest.(check int) "false sentence" 0
    (Pattern_count.ground ctx ~pattern:empty ~vars:[] ~body:Ast.False)

(* ---------------- decomposition vs relalg ---------------- *)

let check_ground_decomposition ?(max_width = 3) a name vars body =
  ignore max_width;
  let r =
    match Locality.formula_radius body with
    | Locality.Local r -> r
    | Locality.Nonlocal w -> Alcotest.fail (name ^ " body nonlocal: " ^ w)
  in
  match Decompose.ground_count ~r ~vars body with
  | None -> Alcotest.fail (name ^ ": decomposition failed")
  | Some cl ->
      let ctx = Pattern_count.make_ctx preds a ~r in
      let got = Clterm.eval_ground ctx cl in
      let expected = Foc_eval.Relalg.count preds a vars body in
      Alcotest.(check int) name expected got

let test_decompose_ground_fixed () =
  let rng = Random.State.make [| 43 |] in
  let g = Foc_graph.Gen.random_tree rng 14 in
  let a = structure_of_graph_coloured rng g in
  check_ground_decomposition a "all pairs" [ "u"; "v" ] (parse "u = u");
  check_ground_decomposition a "edges" [ "u"; "v" ] (parse "E(u,v)");
  check_ground_decomposition a "colour product" [ "u"; "v" ]
    (parse "B(u) & C(v)");
  check_ground_decomposition a "non-edges" [ "u"; "v" ] (parse "!E(u,v)");
  check_ground_decomposition a "mixed or" [ "u"; "v" ]
    (parse "B(u) | C(v)");
  check_ground_decomposition a "single var" [ "u" ] (parse "B(u)");
  check_ground_decomposition a "guarded exists" [ "u"; "v" ]
    (parse "(exists w. E(u,w) & E(w,v)) | (B(u) & C(v))")

let test_decompose_ground_triples () =
  let rng = Random.State.make [| 47 |] in
  let g = Foc_graph.Gen.grid 3 4 in
  let a = structure_of_graph_coloured rng g in
  check_ground_decomposition a "triple colours" [ "u"; "v"; "w" ]
    (parse "B(u) & B(v) & C(w)");
  check_ground_decomposition a "path of length 2" [ "u"; "v"; "w" ]
    (parse "E(u,v) & E(v,w)");
  check_ground_decomposition a "edge plus isolated colour" [ "u"; "v"; "w" ]
    (parse "E(u,v) & C(w)")

let test_decompose_unary_fixed () =
  let rng = Random.State.make [| 53 |] in
  let g = Foc_graph.Gen.random_tree rng 12 in
  let a = structure_of_graph_coloured rng g in
  let check name vars body =
    let counted = List.tl vars in
    let r =
      match Locality.formula_radius body with
      | Locality.Local r -> r
      | Locality.Nonlocal w -> Alcotest.fail (name ^ ": " ^ w)
    in
    match Decompose.unary_count ~r ~vars body with
    | None -> Alcotest.fail (name ^ ": decomposition failed")
    | Some cl ->
        let ctx = Pattern_count.make_ctx preds a ~r in
        let got = Clterm.eval_unary ctx cl in
        for v = 0 to Foc_data.Structure.order a - 1 do
          let expected =
            Foc_eval.Relalg.term_value preds a
              [ (List.hd vars, v) ]
              (Ast.Count (counted, body))
          in
          Alcotest.(check int)
            (Printf.sprintf "%s @ %d" name v)
            expected got.(v)
        done
  in
  check "degree" [ "x"; "y" ] (parse "E(x,y)");
  check "non-neighbours" [ "x"; "y" ] (parse "!E(x,y) & B(y)");
  check "global colour count per x" [ "x"; "y" ] (parse "B(y) & B(x)");
  check "two scattered" [ "x"; "y"; "z" ] (parse "B(x) & C(y) & C(z)")

(* the headline property: decomposition = relalg on random structures *)
let prop_decompose_random =
  QCheck.Test.make ~name:"Lemma 6.4 decomposition agrees with relalg"
    ~count:60
    QCheck.(pair (int_range 4 16) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let g = Foc_graph.Gen.random_bounded_degree rng n 3 in
      let a = structure_of_graph_coloured rng g in
      let bodies =
        [
          ([ "u"; "v" ], "E(u,v) | (B(u) & C(v))");
          ([ "u"; "v" ], "(B(u) & !E(u,v)) | (C(u) & E(v,u))");
          ([ "u"; "v"; "w" ], "E(u,v) & B(w)");
          ([ "u"; "v" ], "(exists s. E(u,s) & E(s,v)) & B(u)");
        ]
      in
      List.for_all
        (fun (vars, src) ->
          let body = parse src in
          let r =
            match Locality.formula_radius body with
            | Locality.Local r -> r
            | Locality.Nonlocal _ -> QCheck.assume_fail ()
          in
          match Decompose.ground_count ~r ~vars body with
          | None -> QCheck.assume_fail ()
          | Some cl ->
              let ctx = Pattern_count.make_ctx preds a ~r in
              Clterm.eval_ground ctx cl
              = Foc_eval.Relalg.count preds a vars body)
        bodies)

let () =
  Alcotest.run "foc_local"
    [
      ( "locality",
        [
          Alcotest.test_case "atoms" `Quick test_radius_atoms;
          Alcotest.test_case "quantifiers" `Quick test_radius_quantifiers;
          Alcotest.test_case "terms" `Quick test_radius_terms;
          Alcotest.test_case "pred formulas" `Quick test_radius_pred_formula;
        ] );
      ( "local_eval",
        [
          Alcotest.test_case "agreement" `Quick test_local_eval_agreement;
          Alcotest.test_case "ball restriction" `Quick test_local_eval_uses_balls;
        ] );
      ( "split",
        [
          Alcotest.test_case "product shape" `Quick test_split_product;
          Alcotest.test_case "semantics on far pairs" `Quick test_split_semantics;
        ] );
      ( "pattern_count",
        [
          Alcotest.test_case "edges" `Quick test_pattern_count_edges;
          Alcotest.test_case "sentences" `Quick test_pattern_count_sentence;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "ground fixed" `Quick test_decompose_ground_fixed;
          Alcotest.test_case "ground triples" `Quick test_decompose_ground_triples;
          Alcotest.test_case "unary fixed" `Quick test_decompose_unary_fixed;
          QCheck_alcotest.to_alcotest prop_decompose_random;
        ] );
    ]
