(* The bounded-degree Hanf substrate: canonical ball types, type grouping,
   and the Hanf engine back-end (predecessor strategy [16]). *)

open Foc_logic
module Structure = Foc_data.Structure

let preds = Pred.standard
let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc_data.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

(* ---------------- canonical keys ---------------- *)

let test_key_distinguishes () =
  let a = Structure.of_graph (Foc_graph.Gen.path 7) in
  (* the endpoint's 1-ball (2 nodes) differs from the midpoint's (3 nodes) *)
  let k_end = Foc_bd.Ball_type.ball_key a ~centre:0 ~r:1 in
  let k_mid = Foc_bd.Ball_type.ball_key a ~centre:3 ~r:1 in
  Alcotest.(check bool) "end vs mid differ" true (k_end <> k_mid);
  (* two interior vertices of a long path share their type *)
  let k_mid2 = Foc_bd.Ball_type.ball_key a ~centre:2 ~r:1 in
  Alcotest.(check string) "interior types equal" k_mid k_mid2

let test_key_root_matters () =
  (* same underlying ball, different root: a path of 3 rooted at the end vs
     rooted in the middle *)
  let a = Structure.of_graph (Foc_graph.Gen.path 3) in
  let k0 = Foc_bd.Ball_type.canonical_key a ~centre:0 in
  let k1 = Foc_bd.Ball_type.canonical_key a ~centre:1 in
  let k2 = Foc_bd.Ball_type.canonical_key a ~centre:2 in
  Alcotest.(check bool) "root position matters" true (k0 <> k1);
  Alcotest.(check string) "symmetric roots agree" k0 k2

let test_key_iso_invariant () =
  (* permuting a structure leaves the multiset of ball keys unchanged *)
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let g = Foc_graph.Gen.random_bounded_degree rng 14 3 in
    let a = coloured (Random.State.int rng 1000) g in
    let n = Structure.order a in
    let perm = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    let b =
      Structure.create (Structure.signature a) ~order:n
        (List.map
           (fun (name, _) ->
             ( name,
               Foc_data.Tuple.Set.elements (Structure.rel a name)
               |> List.map (Array.map (fun v -> perm.(v))) ))
           (Foc_data.Signature.to_list (Structure.signature a)))
    in
    for v = 0 to n - 1 do
      Alcotest.(check string)
        (Printf.sprintf "key of %d = key of image %d" v perm.(v))
        (Foc_bd.Ball_type.ball_key a ~centre:v ~r:2)
        (Foc_bd.Ball_type.ball_key b ~centre:perm.(v) ~r:2)
    done
  done

let test_key_colours_matter () =
  let g = Foc_graph.Gen.path 3 in
  let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1) ] in
  let edges =
    List.concat_map
      (fun (u, v) -> [ [| u; v |]; [| v; u |] ])
      (Foc_graph.Graph.edges g)
  in
  let plain = Structure.create sign ~order:3 [ ("E", edges) ] in
  let marked =
    Structure.create sign ~order:3 [ ("E", edges); ("B", [ [| 0 |] ]) ]
  in
  Alcotest.(check bool) "unary relations distinguish" true
    (Foc_bd.Ball_type.ball_key plain ~centre:0 ~r:1
    <> Foc_bd.Ball_type.ball_key marked ~centre:0 ~r:1)

(* ---------------- type grouping ---------------- *)

let test_grid_has_few_types () =
  let a = Structure.of_graph (Foc_graph.Gen.grid 12 12) in
  let count = Foc_bd.Hanf.type_count a ~r:1 in
  (* corners, edges, interior — 3 positions, plus near-border variants *)
  Alcotest.(check bool)
    (Printf.sprintf "grid r=1 types small (%d)" count)
    true (count <= 9);
  Alcotest.(check int) "classes partition" 144
    (List.fold_left
       (fun acc (_, members) -> acc + List.length members)
       0
       (Foc_bd.Hanf.classes a ~r:1))

let test_cycle_single_type () =
  let a = Structure.of_graph (Foc_graph.Gen.cycle 20) in
  Alcotest.(check int) "vertex-transitive" 1 (Foc_bd.Hanf.type_count a ~r:2)

(* ---------------- Hanf engine back-end ---------------- *)

let hanf_engine () =
  Foc_nd.Engine.create
    ~config:{ Foc_nd.Engine.default_config with backend = Foc_nd.Engine.Hanf }
    ()

let test_backend_agreement () =
  let rng = Random.State.make [| 33 |] in
  let structures =
    [
      ("grid", coloured 1 (Foc_graph.Gen.grid 8 8));
      ("tree", coloured 2 (Foc_graph.Gen.random_tree rng 80));
      ("bounded", coloured 3 (Foc_graph.Gen.random_bounded_degree rng 80 3));
    ]
  in
  let terms =
    [
      "#(y). (E(x,y) & B(y))";
      "#(x,y). (R(x) & !E(x,y) & B(y))";
      "#(x). prime(#(y). E(x,y))";
    ]
  in
  List.iter
    (fun (name, a) ->
      let direct = Foc_nd.Engine.create () in
      List.iter
        (fun src ->
          let t = parse_t src in
          if Var.Set.is_empty (Ast.free_term t) then
            Alcotest.(check int)
              (name ^ " ground: " ^ src)
              (Foc_nd.Engine.eval_ground direct a t)
              (Foc_nd.Engine.eval_ground (hanf_engine ()) a t)
          else
            Alcotest.(check (array int))
              (name ^ " unary: " ^ src)
              (Foc_nd.Engine.eval_unary direct a "x" t)
              (Foc_nd.Engine.eval_unary (hanf_engine ()) a "x" t))
        terms)
    structures

let test_backend_sentence () =
  let a = coloured 4 (Foc_graph.Gen.grid 6 6) in
  let f = parse "exists x. (#(y). (E(x,y) & B(y))) >= 1" in
  Alcotest.(check bool) "sentence agreement"
    (Foc_nd.Engine.check (Foc_nd.Engine.create ()) a f)
    (Foc_nd.Engine.check (hanf_engine ()) a f)

let prop_hanf_agrees =
  QCheck.Test.make ~name:"hanf backend = direct on random structures"
    ~count:20
    QCheck.(pair (int_range 8 50) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      let t = parse_t "#(y). (E(x,y) & B(y))" in
      Foc_nd.Engine.eval_unary (Foc_nd.Engine.create ()) a "x" t
      = Foc_nd.Engine.eval_unary (hanf_engine ()) a "x" t)

let () =
  Alcotest.run "foc_bd"
    [
      ( "ball types",
        [
          Alcotest.test_case "distinguishes" `Quick test_key_distinguishes;
          Alcotest.test_case "root matters" `Quick test_key_root_matters;
          Alcotest.test_case "iso invariant" `Quick test_key_iso_invariant;
          Alcotest.test_case "colours matter" `Quick test_key_colours_matter;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "grid has few types" `Quick test_grid_has_few_types;
          Alcotest.test_case "cycle single type" `Quick test_cycle_single_type;
        ] );
      ( "backend",
        [
          Alcotest.test_case "agreement" `Quick test_backend_agreement;
          Alcotest.test_case "sentence" `Quick test_backend_sentence;
          QCheck_alcotest.to_alcotest prop_hanf_agrees;
        ] );
    ]
