(* Metamorphic properties tying the whole system together:

   - locality soundness: if the calculus certifies radius r for φ(x̄), then
     evaluating φ inside the induced r-neighbourhood N_r(ā) agrees with
     evaluating it in the full structure (the *definition* of r-locality,
     Section 6.1);
   - strictification: rewriting into the paper's strict grammar
     (Definition 3.1 rules (1)–(7)) preserves semantics;
   - isomorphism invariance of engine answers;
   - counting over disjoint unions: ground counts of connected-pattern
     cl-terms add up. *)

open Foc_logic
open Foc_local
module Structure = Foc_data.Structure

let preds = Pred.standard
let parse s = Parser.formula preds s

let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1); ("C", 1) ]

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  let n = Foc_graph.Graph.order g in
  let colour p =
    List.filter_map
      (fun v -> if Random.State.float rng 1.0 < p then Some [| v |] else None)
      (List.init n (fun i -> i))
  in
  let edges =
    List.concat_map
      (fun (u, v) -> [ [| u; v |]; [| v; u |] ])
      (Foc_graph.Graph.edges g)
  in
  Structure.create sign ~order:n
    [ ("E", edges); ("B", colour 0.4); ("C", colour 0.3) ]

(* ---------------- locality soundness ---------------- *)

let local_formulas =
  [
    "E(x,y) | (B(x) & C(y))";
    "exists z. E(x,z) & E(z,y)";
    "forall z. dist(x,z) <= 1 -> B(z)";
    "prime(#(z). (E(x,z) & B(z)))";
    "dist(x,y) <= 2 & !(exists z. E(x,z) & C(z))";
  ]

let prop_locality_soundness =
  QCheck.Test.make ~name:"certified radius really is a locality radius"
    ~count:40
    QCheck.(pair (int_range 6 25) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      List.for_all
        (fun src ->
          let phi = parse src in
          match Locality.formula_radius phi with
          | Locality.Nonlocal _ -> QCheck.assume_fail ()
          | Locality.Local r ->
              let ok = ref true in
              for x = 0 to n - 1 do
                for y = 0 to n - 1 do
                  let global =
                    Foc_eval.Naive.formula preds a
                      (Foc_eval.Naive.env_of_list [ ("x", x); ("y", y) ])
                      phi
                  in
                  let ball = Structure.ball a ~centres:[ x; y ] ~radius:r in
                  let sub, old_of_new = Structure.induced a ball in
                  let new_of_old = Hashtbl.create 16 in
                  Array.iteri
                    (fun nw od -> Hashtbl.replace new_of_old od nw)
                    old_of_new;
                  let local =
                    Foc_eval.Naive.formula preds sub
                      (Foc_eval.Naive.env_of_list
                         [
                           ("x", Hashtbl.find new_of_old x);
                           ("y", Hashtbl.find new_of_old y);
                         ])
                      phi
                  in
                  if global <> local then ok := false
                done
              done;
              !ok)
        local_formulas)

(* ---------------- strictification ---------------- *)

let strict_formulas =
  [
    "forall x. B(x) -> (exists y. E(x,y))";
    "true & (false | !(exists x. C(x)))";
    "exists x. eq(#(y). E(x,y), 2)";
    "forall x y. E(x,y) <-> E(y,x)";
  ]

let prop_strictify_preserves =
  QCheck.Test.make ~name:"strictify preserves semantics" ~count:40
    QCheck.(pair (int_range 2 8) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.erdos_renyi rng n 0.4) in
      let expand x y d =
        Dist_formula.dist_le_fo sign d x y
      in
      List.for_all
        (fun src ->
          let phi = parse src in
          let strict = Ast.strictify expand phi in
          Foc_eval.Naive.sentence preds a phi
          = Foc_eval.Naive.sentence preds a strict)
        strict_formulas)

(* ---------------- dist atoms eliminate to pure FO ---------------- *)

let prop_dist_elimination =
  QCheck.Test.make ~name:"dist(x,y)<=r matches its FO expansion" ~count:30
    QCheck.(triple (int_range 2 9) (int_range 0 3) (int_range 0 10000))
    (fun (n, r, seed) ->
      let rng = Random.State.make [| n; r; seed |] in
      let a = coloured seed (Foc_graph.Gen.erdos_renyi rng n 0.3) in
      let fo = Dist_formula.dist_le_fo sign r "x" "y" in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          let env = Foc_eval.Naive.env_of_list [ ("x", x); ("y", y) ] in
          let direct =
            Foc_eval.Naive.formula preds a env (Ast.Dist ("x", "y", r))
          in
          let expanded = Foc_eval.Naive.formula preds a env fo in
          if direct <> expanded then ok := false
        done
      done;
      !ok)

(* ---------------- isomorphism invariance ---------------- *)

let prop_iso_invariance =
  QCheck.Test.make ~name:"engine answers are isomorphism-invariant"
    ~count:30
    QCheck.(pair (int_range 3 10) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.erdos_renyi rng n 0.35) in
      (* apply a random permutation *)
      let perm = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let permuted =
        Structure.create sign ~order:n
          (List.map
             (fun (name, _) ->
               ( name,
                 Foc_data.Tuple.Set.elements (Structure.rel a name)
                 |> List.map (Array.map (fun v -> perm.(v))) ))
             (Foc_data.Signature.to_list sign))
      in
      let terms =
        [ "#(x,y). E(x,y)"; "#(x). (B(x) & (exists y. E(x,y) & C(y)))" ]
      in
      let eng = Foc_nd.Engine.create () in
      List.for_all
        (fun src ->
          let t = Parser.term preds src in
          Foc_nd.Engine.eval_ground eng a t
          = Foc_nd.Engine.eval_ground eng permuted t)
        terms)

(* ---------------- disjoint unions ---------------- *)

let prop_disjoint_union_counts =
  QCheck.Test.make ~name:"connected counts add over disjoint unions"
    ~count:30
    QCheck.(pair (int_range 3 12) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      let b =
        coloured (seed + 1) (Foc_graph.Gen.random_bounded_degree rng (n + 2) 3)
      in
      let u = Structure.disjoint_union a b in
      let eng () = Foc_nd.Engine.create () in
      (* a connected kernel: counts must be additive *)
      let t = Parser.term preds "#(x,y). (E(x,y) & B(y))" in
      Foc_nd.Engine.eval_ground (eng ()) u t
      = Foc_nd.Engine.eval_ground (eng ()) a t
        + Foc_nd.Engine.eval_ground (eng ()) b t)

let () =
  Alcotest.run "metamorphic"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_locality_soundness;
          QCheck_alcotest.to_alcotest prop_strictify_preserves;
          QCheck_alcotest.to_alcotest prop_dist_elimination;
          QCheck_alcotest.to_alcotest prop_iso_invariance;
          QCheck_alcotest.to_alcotest prop_disjoint_union_counts;
        ] );
    ]
