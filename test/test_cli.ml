(* End-to-end smoke tests of the foc CLI binary: generate a structure file,
   then drive every subcommand against it and check the outputs. *)

(* dune runtest runs from the test directory; dune exec from the project
   root — probe both *)
let cli =
  List.find Sys.file_exists
    [ "../bin/foc_cli.exe"; "_build/default/bin/foc_cli.exe" ]

let run args =
  let tmp = Filename.temp_file "foc_cli_out" ".txt" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" cli args tmp in
  let rc = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (rc, out)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  go 0

let check_run name args expect =
  let rc, out = run args in
  Alcotest.(check int) (name ^ ": exit code") 0 rc;
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output has %S (got %S)" name fragment out)
        true (contains out fragment))
    expect

let structure_file = Filename.temp_file "foc_cli" ".foc"
let db_file = Filename.temp_file "foc_cli_db" ".foc"

let test_gen () =
  check_run "gen"
    (Printf.sprintf "gen --class random-tree -n 60 --seed 3 --colours -o %s"
       structure_file)
    [ "wrote"; "order 60" ]

let test_count_all_engines () =
  List.iter
    (fun engine ->
      let _, out =
        run
          (Printf.sprintf "count -s %s -e %s \"#(x,y). E(x,y)\"" structure_file
             engine)
      in
      (* tree with 59 edges, both orientations *)
      Alcotest.(check bool)
        (engine ^ " count output: " ^ out)
        true (contains out "118"))
    [ "direct"; "cover"; "splitter"; "hanf"; "relalg" ]

let test_check_and_stats () =
  check_run "check"
    (Printf.sprintf
       "check -s %s --stats \"exists x. (#(y). E(x,y)) >= 1\"" structure_file)
    [ "true"; "# stats:" ]

let test_query () =
  check_run "query"
    (Printf.sprintf
       "query -s %s --head x --term \"#(y). E(x,y)\" --body \"R(x)\" --limit 2"
       structure_file)
    [ "rows" ]

let test_explain () =
  check_run "explain" "explain \"exists x. prime(#(y). (E(x,y) & B(y)))\""
    [ "plan:"; "localized" ]

let test_sql_pipeline () =
  check_run "gendb"
    (Printf.sprintf "gendb --customers 40 --orders 120 -o %s" db_file)
    [ "wrote" ];
  check_run "sql"
    (Printf.sprintf
       "sql -s %s \"SELECT Country, COUNT(Id) FROM Customer GROUP BY \
        Country\" --limit 3"
       db_file)
    [ "FOC1>"; "rows" ]

let test_batch () =
  (* batch answers must round-trip against individual check runs, and the
     warm session must report cache hits *)
  let queries_file = Filename.temp_file "foc_cli_batch" ".txt" in
  let srcs =
    [
      "exists x. (#(y). E(x,y)) >= 1";
      "exists x. prime(#(y). (E(x,y) | E(y,x)))";
      "#(x,y). (E(x,y) & B(y)) >= 40";
    ]
  in
  let oc = open_out queries_file in
  output_string oc "# batch smoke queries\n\n";
  List.iter (fun s -> output_string oc (s ^ "\n")) srcs;
  close_out oc;
  let rc, out =
    run
      (Printf.sprintf "batch -s %s --repeat 2 --stats -j 1 %s" structure_file
         queries_file)
  in
  Sys.remove queries_file;
  Alcotest.(check int) "batch exit code" 0 rc;
  let expected =
    List.map
      (fun src ->
        let _, one = run (Printf.sprintf "check -s %s \"%s\"" structure_file src) in
        contains one "true")
      srcs
  in
  let batch_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> l = "true" || l = "false")
    |> List.map (fun l -> l = "true")
  in
  Alcotest.(check (list bool)) "batch = per-query check" expected batch_lines;
  Alcotest.(check bool)
    ("warm session reports compiled hits: " ^ out)
    true
    (contains out "session.compiled_hits=3");
  Alcotest.(check bool)
    ("stats include session counters: " ^ out)
    true
    (contains out "session.evictions=")

let test_parse_error_exit () =
  let rc, _ = run (Printf.sprintf "check -s %s \"E(x\"" structure_file) in
  Alcotest.(check bool) "nonzero exit on parse error" true (rc <> 0)

let () =
  Alcotest.run "foc CLI"
    [
      ( "smoke",
        [
          Alcotest.test_case "gen" `Quick test_gen;
          Alcotest.test_case "count on all engines" `Quick test_count_all_engines;
          Alcotest.test_case "check + stats" `Quick test_check_and_stats;
          Alcotest.test_case "query" `Quick test_query;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "gendb + sql" `Quick test_sql_pipeline;
          Alcotest.test_case "batch round-trip" `Quick test_batch;
          Alcotest.test_case "parse error exit" `Quick test_parse_error_exit;
        ] );
    ]
