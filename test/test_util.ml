(* Unit and property tests for foc_util: bitsets, combinatorics, primes. *)

open Foc_util

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal s);
  Bitset.add s 3;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check bool) "mem 3" true (Bitset.mem s 3);
  Alcotest.(check bool) "mem 4" false (Bitset.mem s 4);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 3; 64; 99 ] (Bitset.to_list s);
  Bitset.remove s 64;
  Alcotest.(check (list int)) "after remove" [ 3; 99 ] (Bitset.to_list s);
  let c = Bitset.copy s in
  Bitset.add c 0;
  Alcotest.(check bool) "copy is deep" false (Bitset.mem s 0);
  Bitset.clear s;
  Alcotest.(check int) "clear" 0 (Bitset.cardinal s)

let test_bitset_subset () =
  let a = Bitset.of_list 10 [ 1; 2 ] and b = Bitset.of_list 10 [ 1; 2; 5 ] in
  Alcotest.(check bool) "a <= b" true (Bitset.subset a b);
  Alcotest.(check bool) "b <= a" false (Bitset.subset b a);
  Alcotest.(check bool) "a = a" true (Bitset.equal a (Bitset.copy a))

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset.add: out of range")
    (fun () -> Bitset.add s 8)

let test_subsets () =
  Alcotest.(check int) "2^4 subsets" 16 (List.length (Combi.subsets [ 1; 2; 3; 4 ]));
  Alcotest.(check (list (list int))) "subsets of []" [ [] ] (Combi.subsets []);
  let s3 = Combi.subsets_of_size 2 [ 1; 2; 3 ] in
  Alcotest.(check int) "C(3,2)" 3 (List.length s3)

let test_pairs () =
  Alcotest.(check int) "C(5,2) pairs" 10 (List.length (Combi.pairs [ 1; 2; 3; 4; 5 ]));
  Alcotest.(check (list (pair int int))) "pairs order" [ (1, 2); (1, 3); (2, 3) ]
    (Combi.pairs [ 1; 2; 3 ])

let test_tuples () =
  Alcotest.(check int) "3^2 tuples" 9 (List.length (Combi.tuples [ 0; 1; 2 ] 2));
  Alcotest.(check (list (list int))) "0-tuples" [ [] ] (Combi.tuples [ 0; 1 ] 0);
  let seen = ref 0 in
  Combi.iter_tuples 4 3 (fun t ->
      Alcotest.(check int) "arity" 3 (Array.length t);
      incr seen);
  Alcotest.(check int) "4^3 iterated" 64 !seen;
  let seen0 = ref 0 in
  Combi.iter_tuples 5 0 (fun _ -> incr seen0);
  Alcotest.(check int) "single empty tuple" 1 !seen0;
  (* empty domain, positive arity: nothing *)
  let seen_empty = ref 0 in
  Combi.iter_tuples 0 2 (fun _ -> incr seen_empty);
  Alcotest.(check int) "no tuples over empty domain" 0 !seen_empty

let bell = [ (0, 1); (1, 1); (2, 2); (3, 5); (4, 15); (5, 52) ]

let test_partitions () =
  List.iter
    (fun (n, b) ->
      let xs = List.init n (fun i -> i) in
      Alcotest.(check int)
        (Printf.sprintf "Bell(%d)" n)
        b
        (List.length (Combi.partitions xs)))
    bell;
  (* every partition covers exactly the input *)
  List.iter
    (fun p ->
      let flat = List.sort compare (List.concat p) in
      Alcotest.(check (list int)) "partition covers" [ 0; 1; 2; 3 ] flat)
    (Combi.partitions [ 0; 1; 2; 3 ])

let test_cartesian_range_sum () =
  Alcotest.(check int) "cartesian size" 6
    (List.length (Combi.cartesian [ [ 1; 2 ]; [ 3 ]; [ 4; 5; 6 ] ]));
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Combi.range 2 5);
  Alcotest.(check (list int)) "empty range" [] (Combi.range 5 5);
  Alcotest.(check int) "sum" 12 (Combi.sum (fun x -> 2 * x) [ 1; 2; 3 ])

let known_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61 ]

let test_primes_small () =
  for n = -5 to 62 do
    Alcotest.(check bool)
      (Printf.sprintf "is_prime %d" n)
      (List.mem n known_primes) (Prime.is_prime n)
  done

let test_primes_large () =
  Alcotest.(check bool) "2^31-1 prime" true (Prime.is_prime 2147483647);
  Alcotest.(check bool) "2^31+1 not prime" false (Prime.is_prime 2147483649);
  Alcotest.(check bool) "10^15+37 prime" true (Prime.is_prime 1000000000000037);
  Alcotest.(check bool) "square not prime" false (Prime.is_prime (104729 * 104729));
  Alcotest.(check int) "next_prime" 104729 (Prime.next_prime 104728)

let prime_agrees_with_trial_division =
  QCheck.Test.make ~name:"miller-rabin agrees with trial division"
    ~count:500
    QCheck.(int_range 0 100000)
    (fun n ->
      let trial n =
        if n < 2 then false
        else begin
          let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
          go 2
        end
      in
      Prime.is_prime n = trial n)

let subsets_size_consistent =
  QCheck.Test.make ~name:"subsets_of_size partitions subsets" ~count:100
    QCheck.(int_range 0 8)
    (fun n ->
      let xs = List.init n (fun i -> i) in
      let total =
        List.fold_left
          (fun acc k -> acc + List.length (Combi.subsets_of_size k xs))
          0
          (Combi.range 0 (n + 1))
      in
      total = List.length (Combi.subsets xs))

let () =
  Alcotest.run "foc_util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "subset/equal" `Quick test_bitset_subset;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "combi",
        [
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "tuples" `Quick test_tuples;
          Alcotest.test_case "partitions" `Quick test_partitions;
          Alcotest.test_case "cartesian/range/sum" `Quick test_cartesian_range_sum;
          QCheck_alcotest.to_alcotest subsets_size_consistent;
        ] );
      ( "prime",
        [
          Alcotest.test_case "small" `Quick test_primes_small;
          Alcotest.test_case "large" `Quick test_primes_large;
          QCheck_alcotest.to_alcotest prime_agrees_with_trial_division;
        ] );
    ]
