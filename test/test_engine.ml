(* Integration tests for the main engine (Theorem 5.5): agreement with the
   reference engines on the paper's running examples and on random
   structures, for all three back-ends. *)

open Foc_logic
open Foc_nd

let preds = Pred.standard
let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s

let engines () =
  [
    ("direct", Engine.create ());
    ( "cover",
      Engine.create
        ~config:{ Engine.default_config with backend = Engine.Cover } () );
    ( "splitter",
      Engine.create
        ~config:
          {
            Engine.default_config with
            backend = Engine.Splitter { max_rounds = 3; small = 12 };
          }
        () );
  ]

(* Example 5.4's coloured digraphs over a sparse graph. *)
let colored rng n =
  let g = Foc_graph.Gen.random_bounded_degree rng n 3 in
  Foc_data.Db_gen.colored_digraph rng ~graph:g ~orient:`Random ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let test_sentences () =
  let rng = Random.State.make [| 61 |] in
  let a = colored rng 30 in
  let sentences =
    [
      "exists x. R(x) & B(x)";
      "forall x. (exists y. E(x,y)) | (exists y. E(y,x)) | R(x) | !R(x)";
      "prime(#(x). R(x))";
      "prime(#(x). x = x + #(x,y). E(x,y))" (* Example 3.2 *);
      "exists x. (#(y). (E(x,y) & B(y))) >= 1";
      "!(exists x y. E(x,y) & E(y,x))";
    ]
  in
  List.iter
    (fun (name, eng) ->
      List.iter
        (fun s ->
          let f = parse s in
          Alcotest.(check bool)
            (name ^ ": " ^ s)
            (Foc_eval.Relalg.holds preds a [] f)
            (Engine.check eng a f))
        sentences)
    (engines ())

let test_ground_terms () =
  let rng = Random.State.make [| 67 |] in
  let a = colored rng 25 in
  let terms =
    [
      "#(x). R(x)";
      "#(x,y). E(x,y)";
      "#(x). x = x + #(x,y). E(x,y)";
      "#(x,y). (R(x) & B(y))" (* scattered pairs: inclusion-exclusion *);
      "#(x,y). (E(x,y) | E(y,x))";
      "3 * #(x). (R(x) & (exists y. E(x,y) & B(y))) - 7";
    ]
  in
  List.iter
    (fun (name, eng) ->
      List.iter
        (fun s ->
          let t = parse_t s in
          Alcotest.(check int)
            (name ^ ": " ^ s)
            (Foc_eval.Relalg.term_value preds a [] t)
            (Engine.eval_ground eng a t))
        terms)
    (engines ())

let test_unary_terms () =
  let rng = Random.State.make [| 71 |] in
  let a = colored rng 25 in
  let n = Foc_data.Structure.order a in
  let terms =
    [
      "#(y). E(x,y)" (* out-degree: Example 3.2 *);
      "#(y). (E(x,y) & B(y))" (* t_B of Example 5.4 *);
      "#(y,z). (E(x,y) & E(y,z) & E(z,x))" (* t_Δ of Example 5.4 *);
      "#(y). (B(y) & R(x))" (* scattered *);
      "2 * #(y). E(x,y) + #(y). E(y,x)";
    ]
  in
  List.iter
    (fun (name, eng) ->
      List.iter
        (fun s ->
          let t = parse_t s in
          let got = Engine.eval_unary eng a "x" t in
          for v = 0 to n - 1 do
            Alcotest.(check int)
              (Printf.sprintf "%s: %s @%d" name s v)
              (Foc_eval.Relalg.term_value preds a [ ("x", v) ] t)
              got.(v)
          done)
        terms)
    (engines ())

let test_nested_counting () =
  (* #-depth 2: stratification must materialise the inner condition.
     φ_Δ,R of Example 5.4: nodes whose triangle count equals the number of
     red nodes — then count them. *)
  let rng = Random.State.make [| 73 |] in
  let a = colored rng 20 in
  let t =
    parse_t "#(x). eq(#(y,z). (E(x,y) & E(y,z) & E(z,x)), #(w). R(w))"
  in
  List.iter
    (fun (name, eng) ->
      Alcotest.(check int)
        (name ^ ": t_Δ,R")
        (Foc_eval.Relalg.term_value preds a [] t)
        (Engine.eval_ground eng a t);
      Alcotest.(check bool)
        (name ^ " materialised inner conditions")
        true
        ((Engine.stats eng).materialised > 0))
    (engines ())

let test_holds_unary () =
  let rng = Random.State.make [| 79 |] in
  let a = colored rng 25 in
  let n = Foc_data.Structure.order a in
  let formulas =
    [
      "R(x) & (exists y. E(x,y))";
      "prime(#(y). E(x,y))";
      "(#(y). (E(x,y) & B(y))) == #(y). E(y,x)";
    ]
  in
  List.iter
    (fun (name, eng) ->
      List.iter
        (fun s ->
          let f = parse s in
          let got = Engine.holds_unary eng a "x" f in
          for v = 0 to n - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s @%d" name s v)
              (Foc_eval.Relalg.holds preds a [ ("x", v) ] f)
              got.(v)
          done)
        formulas)
    (engines ())

let test_query_example_5_4 () =
  (* the full query of Example 5.4:
     { (x, y, t_B(x)·t_Δ(y)) : φ_B,Δ,R(x) ∧ G(y) } *)
  let rng = Random.State.make [| 83 |] in
  let a = colored rng 14 in
  let t_b = parse_t "#(u). (E(x,u) & B(u))" in
  let t_d y = parse_t (Printf.sprintf "#(u,v). (E(%s,u) & E(u,v) & E(v,%s))" y y) in
  let body =
    parse
      "eq(#(u). (E(x,u) & B(u)), #(u,v). (E(x,u) & E(u,v) & E(v,x)) + #(w). \
       eq(#(u,v). (E(w,u) & E(u,v) & E(v,w)), #(z). R(z))) & G(y)"
  in
  ignore t_b;
  let q =
    Query.make ~head_vars:[ "x"; "y" ]
      ~head_terms:[ Ast.Mul (t_b, t_d "y") ]
      body
  in
  Alcotest.(check bool) "query is FOC1" true (Query.is_foc1 q);
  let expected = Foc_eval.Relalg.query preds a q in
  List.iter
    (fun (name, eng) ->
      let got = Engine.run_query eng a q in
      Alcotest.(check bool) (name ^ ": full result agrees") true (got = expected);
      (* spot-check the per-tuple interface of Theorem 5.5 *)
      List.iter
        (fun (tuple, values) ->
          match Engine.check_tuple eng a q tuple with
          | Some (true, got_values) ->
              Alcotest.(check (array int)) (name ^ ": tuple values") values got_values
          | _ -> Alcotest.fail (name ^ ": check_tuple rejected a result tuple"))
        (if List.length expected > 3 then [ List.hd expected ] else expected))
    (engines ())

let test_unary_head_query () =
  (* single-variable head: fully on the localized path *)
  let rng = Random.State.make [| 89 |] in
  let a = colored rng 30 in
  let q =
    Query.make ~head_vars:[ "x" ]
      ~head_terms:[ parse_t "#(y). E(x,y)" ]
      (parse "R(x)")
  in
  let expected = Foc_eval.Relalg.query preds a q in
  List.iter
    (fun (name, eng) ->
      let got = Engine.run_query eng a q in
      Alcotest.(check bool) (name ^ ": rows agree") true (got = expected))
    (engines ())

let test_no_fallback_on_supported () =
  (* the degree query must run without baseline fallbacks *)
  let rng = Random.State.make [| 97 |] in
  let a = colored rng 40 in
  let eng = Engine.create () in
  ignore (Engine.eval_unary eng a "x" (parse_t "#(y). (E(x,y) & B(y))"));
  Alcotest.(check int) "no fallbacks" 0 (Engine.stats eng).fallbacks;
  Alcotest.(check bool) "built a cl-term" true ((Engine.stats eng).clterms_built > 0)

let test_strict_mode () =
  let rng = Random.State.make [| 101 |] in
  let a = colored rng 10 in
  let eng =
    Engine.create
      ~config:{ Engine.default_config with allow_fallback = false } ()
  in
  (* a genuinely non-FOC1 formula must be rejected, not silently computed *)
  let bad = parse "eq(#(u). E(x,u), #(u). E(y,u))" in
  (match
     Engine.holds_unary eng a "x" (Ast.Exists ("y", Ast.And (bad, Ast.True)))
   with
  | exception Engine.Outside_fragment _ -> ()
  | _ -> Alcotest.fail "expected Outside_fragment");
  (* unguarded global counting body must also be refused in strict mode *)
  match Engine.eval_ground eng a (parse_t "#(x,y). (R(x) & !E(x,y) & !E(y,x) & !(x = y) & B(y))") with
  | exception Engine.Outside_fragment _ -> ()
  | _ -> ()

let prop_engine_matches_relalg =
  QCheck.Test.make ~name:"engine = relalg on random FOC1 ground terms"
    ~count:40
    QCheck.(pair (int_range 4 18) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = colored rng n in
      let kernels =
        [
          "#(x). (R(x) | (exists y. E(x,y) & G(y)))";
          "#(x,y). (E(x,y) & !B(y))";
          "#(x). eq(#(y). E(x,y), #(y). E(y,x))";
          "#(x,y). ((R(x) & G(y)) | E(x,y))";
        ]
      in
      let eng = Engine.create () in
      List.for_all
        (fun s ->
          let t = parse_t s in
          Engine.eval_ground eng a t = Foc_eval.Relalg.term_value preds a [] t)
        kernels)

let () =
  Alcotest.run "foc_nd engine"
    [
      ( "agreement",
        [
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "ground terms" `Quick test_ground_terms;
          Alcotest.test_case "unary terms" `Quick test_unary_terms;
          Alcotest.test_case "nested counting (#-depth 2)" `Quick test_nested_counting;
          Alcotest.test_case "unary formulas" `Quick test_holds_unary;
        ] );
      ( "queries",
        [
          Alcotest.test_case "Example 5.4" `Quick test_query_example_5_4;
          Alcotest.test_case "unary head" `Quick test_unary_head_query;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "no fallback on supported" `Quick test_no_fallback_on_supported;
          Alcotest.test_case "strict mode" `Quick test_strict_mode;
        ] );
      ("random", [ QCheck_alcotest.to_alcotest prop_engine_matches_relalg ]);
    ]
