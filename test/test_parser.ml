(* Parser tests: golden parses, error cases, and the pretty-printer
   round-trip property on randomly generated expressions. *)

open Foc_logic
open Ast

let fml = Alcotest.testable (fun ppf f -> Pp.formula ppf f) equal_formula
let trm = Alcotest.testable (fun ppf t -> Pp.term ppf t) equal_term
let parse s = Parser.formula Pred.standard s
let parse_t s = Parser.term Pred.standard s

let test_atoms () =
  Alcotest.check fml "eq" (Eq ("x", "y")) (parse "x = y");
  Alcotest.check fml "rel" (Rel ("E", [| "x"; "y" |])) (parse "E(x, y)");
  Alcotest.check fml "nullary rel" (Rel ("Z", [||])) (parse "Z()");
  Alcotest.check fml "dist" (Dist ("x", "y", 3)) (parse "dist(x,y) <= 3");
  Alcotest.check fml "true" True (parse "true");
  Alcotest.check fml "false" False (parse "false")

let test_connectives () =
  Alcotest.check fml "precedence & over |"
    (Or (Rel ("P", [| "x" |]), And (Rel ("Q", [| "x" |]), Rel ("R", [| "x" |]))))
    (parse "P(x) | Q(x) & R(x)");
  Alcotest.check fml "neg binds tight"
    (Or (Neg (Rel ("P", [| "x" |])), Rel ("Q", [| "x" |])))
    (parse "!P(x) | Q(x)");
  Alcotest.check fml "implies desugars"
    (Or (Neg (Rel ("P", [| "x" |])), Rel ("Q", [| "x" |])))
    (parse "P(x) -> Q(x)");
  Alcotest.check fml "parens"
    (And (Or (Rel ("P", [| "x" |]), Rel ("Q", [| "x" |])), Rel ("R", [| "x" |])))
    (parse "(P(x) | Q(x)) & R(x)")

let test_quantifiers () =
  Alcotest.check fml "exists multi"
    (Exists ("x", Exists ("y", Rel ("E", [| "x"; "y" |]))))
    (parse "exists x y. E(x,y)");
  Alcotest.check fml "forall"
    (Forall ("x", Rel ("P", [| "x" |])))
    (parse "forall x. P(x)");
  Alcotest.check fml "quantifier in conjunction"
    (And (Rel ("P", [| "x" |]), Exists ("y", Rel ("E", [| "x"; "y" |]))))
    (parse "P(x) & (exists y. E(x,y))")

let test_terms () =
  Alcotest.check trm "int" (Int 42) (parse_t "42");
  Alcotest.check trm "negative" (Int (-3)) (parse_t "-3");
  Alcotest.check trm "count" (Count ([ "y" ], Rel ("E", [| "x"; "y" |])))
    (parse_t "#(y). E(x,y)");
  Alcotest.check trm "empty count" (Count ([], True)) (parse_t "#(). true");
  Alcotest.check trm "precedence * over +"
    (Add (Int 1, Mul (Int 2, Int 3)))
    (parse_t "1 + 2 * 3");
  Alcotest.check trm "subtraction desugars" (Ast.sub (Int 5) (Int 2)) (parse_t "5 - 2")

let test_pred_sugar () =
  Alcotest.check fml "ge1 sugar" (Pred ("ge1", [ Int 2 ])) (parse "2 >= 1");
  Alcotest.check fml "eq sugar"
    (Pred ("eq", [ Int 1; Int 2 ]))
    (parse "1 == 2");
  Alcotest.check fml "named pred" (Pred ("prime", [ Int 7 ])) (parse "prime(7)");
  Alcotest.check fml "pred with count arg"
    (Pred ("prime", [ Count ([ "x" ], Eq ("x", "x")) ]))
    (parse "prime(#(x). x = x)");
  (* comparison of counting terms, parenthesized lhs *)
  Alcotest.check fml "paren lhs comparison"
    (Pred ("le", [ Add (Int 1, Int 2); Int 4 ]))
    (parse "(1 + 2) <= 4")

let test_example_3_2 () =
  (* the paper's Example 3.2 formulas parse and are FOC1 *)
  let f1 = parse "prime(#(x). x = x + #(x,y). E(x,y))" in
  Alcotest.(check bool) "example 1 foc1" true (Fragment.is_foc1 f1);
  let f3 =
    parse "exists x. prime(#(y). eq(#(z). E(x,z), #(z). E(y,z)))"
  in
  Alcotest.(check bool) "example 3 parses, not foc1" false (Fragment.is_foc1 f3)

let test_errors () =
  let bad s =
    match Parser.formula_result Pred.standard s with
    | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
    | Error _ -> ()
  in
  bad "E(x";
  bad "x =";
  bad "exists . P(x)";
  bad "P(x) &";
  bad "dist(x,y) <= ";
  bad "#(y). E(x,y)";
  (* a bare term is not a formula *)
  bad "P(x) P(y)";
  bad "exists exists. P(x)";
  bad "_x = y"

let gen_var = QCheck.Gen.oneofl [ "x"; "y"; "z"; "u"; "v" ]

let gen_formula =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self (size, depth) ->
            let atom =
              oneof
                [
                  map2 (fun a b -> Eq (a, b)) gen_var gen_var;
                  map2 (fun a b -> Rel ("E", [| a; b |])) gen_var gen_var;
                  map (fun a -> Rel ("P", [| a |])) gen_var;
                  map3 (fun a b d -> Dist (a, b, d)) gen_var gen_var (int_range 0 4);
                  return True;
                  return False;
                ]
            in
            if size <= 1 then atom
            else begin
              let sub = self (size / 2, depth) in
              let smaller = self (size - 1, depth) in
              let gen_count =
                map2
                  (fun v f -> Count ([ v ], f))
                  gen_var
                  (self (size / 2, depth + 1))
              in
              let gen_term =
                oneof
                  [
                    map (fun i -> Int i) (int_range (-3) 9);
                    gen_count;
                    map2 (fun a b -> Add (a, b)) (map (fun i -> Int i) small_nat) gen_count;
                  ]
              in
              let preds_gens =
                if depth < 2 then
                  [
                    map (fun t -> Pred ("ge1", [ t ])) gen_term;
                    map2 (fun s t -> Pred ("eq", [ s; t ])) gen_term gen_term;
                    map (fun t -> Pred ("prime", [ t ])) gen_term;
                  ]
                else []
              in
              oneof
                ([
                   atom;
                   map (fun f -> Neg f) smaller;
                   map2 (fun f g -> Or (f, g)) sub sub;
                   map2 (fun f g -> And (f, g)) sub sub;
                   map2 (fun v f -> Exists (v, f)) gen_var smaller;
                   map2 (fun v f -> Forall (v, f)) gen_var smaller;
                 ]
                @ preds_gens)
            end)
          (size, 0)))

let arb_formula = QCheck.make ~print:Pp.formula_to_string gen_formula

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (pp f) = f" ~count:500 arb_formula (fun f ->
      match Parser.formula_result Pred.standard (Pp.formula_to_string f) with
      | Ok f' -> equal_formula f f'
      | Error msg -> QCheck.Test.fail_reportf "no parse: %s" msg)

let () =
  Alcotest.run "foc_logic parser"
    [
      ( "golden",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "terms" `Quick test_terms;
          Alcotest.test_case "pred sugar" `Quick test_pred_sugar;
          Alcotest.test_case "example 3.2" `Quick test_example_3_2;
        ] );
      ("errors", [ Alcotest.test_case "rejections" `Quick test_errors ]);
      ("roundtrip", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
