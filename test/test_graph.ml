(* Tests for foc_graph: graphs, BFS/balls, components, generators and
   connectivity patterns. *)

open Foc_graph

let test_create_dedup () =
  let g = Graph.create 4 [ (0, 1); (1, 0); (0, 0); (2, 3); (2, 3) ] in
  Alcotest.(check int) "order" 4 (Graph.order g);
  Alcotest.(check int) "edges deduped, loop dropped" 2 (Graph.edge_count g);
  Alcotest.(check int) "size" 6 (Graph.size g);
  Alcotest.(check bool) "mem 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem 1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no loop" false (Graph.mem_edge g 0 0);
  Alcotest.(check bool) "no 0-2" false (Graph.mem_edge g 0 2)

let test_degrees () =
  let g = Gen.star 5 in
  Alcotest.(check int) "centre degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 1);
  Alcotest.(check int) "max degree" 4 (Graph.max_degree g)

let test_induced () =
  let g = Gen.cycle 6 in
  let sub, old_of_new = Graph.induced g [ 0; 1; 2; 4 ] in
  Alcotest.(check int) "order" 4 (Graph.order sub);
  Alcotest.(check int) "edges 0-1,1-2" 2 (Graph.edge_count sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2; 4 |] old_of_new

let test_remove_vertex () =
  let g = Gen.path 5 in
  let g', _ = Graph.remove_vertex g 2 in
  Alcotest.(check int) "order" 4 (Graph.order g');
  Alcotest.(check int) "two edges left" 2 (Graph.edge_count g')

let test_union () =
  let g = Graph.union (Gen.path 3) (Gen.path 2) in
  Alcotest.(check int) "order" 5 (Graph.order g);
  Alcotest.(check bool) "shifted edge" true (Graph.mem_edge g 3 4);
  Alcotest.(check bool) "no cross edge" false (Graph.mem_edge g 2 3)

let test_bfs_path () =
  let g = Gen.path 10 in
  Alcotest.(check int) "dist endpoints" 9 (Bfs.dist g 0 9);
  Alcotest.(check int) "dist self" 0 (Bfs.dist g 4 4);
  Alcotest.(check bool) "dist_le true" true (Bfs.dist_le g 0 5 5);
  Alcotest.(check bool) "dist_le false" false (Bfs.dist_le g 0 5 4);
  Alcotest.(check (list int)) "ball radius 2 around 5" [ 3; 4; 5; 6; 7 ]
    (Bfs.ball g ~centres:[ 5 ] ~radius:2);
  Alcotest.(check (list int)) "multi-source ball" [ 0; 1; 8; 9 ]
    (Bfs.ball g ~centres:[ 0; 9 ] ~radius:1)

let test_bfs_disconnected () =
  let g = Graph.create 4 [ (0, 1) ] in
  Alcotest.(check int) "infinite dist" Bfs.infinity (Bfs.dist g 0 3);
  Alcotest.(check bool) "dist_le across" false (Bfs.dist_le g 0 3 100);
  Alcotest.(check (list int)) "ball stays in component" [ 0; 1 ]
    (Bfs.ball g ~centres:[ 0 ] ~radius:100)

let test_ball_tbl_matches_distances () =
  let rng = Random.State.make [| 42 |] in
  let g = Gen.random_bounded_degree rng 60 3 in
  let d = Bfs.distances_from g ~sources:[ 7 ] ~radius:4 in
  let tbl = Bfs.ball_tbl g ~centres:[ 7 ] ~radius:4 in
  for v = 0 to 59 do
    let expected = if d.(v) = Bfs.infinity then None else Some d.(v) in
    Alcotest.(check (option int))
      (Printf.sprintf "vertex %d" v)
      expected
      (Hashtbl.find_opt tbl v)
  done

let test_tuple_connected () =
  let g = Gen.path 10 in
  Alcotest.(check bool) "adjacent pair" true (Bfs.tuple_connected g 1 [ 3; 4 ]);
  Alcotest.(check bool) "far pair" false (Bfs.tuple_connected g 1 [ 0; 9 ]);
  Alcotest.(check bool) "chain through middle" true
    (Bfs.tuple_connected g 3 [ 0; 3; 6 ]);
  Alcotest.(check bool) "empty tuple" true (Bfs.tuple_connected g 1 [])

let test_components () =
  let g = Graph.create 6 [ (0, 1); (1, 2); (4, 5) ] in
  let comps = Components.components g in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ] comps;
  Alcotest.(check bool) "not connected" false (Components.is_connected g);
  Alcotest.(check bool) "same comp" true (Components.same_component g 0 2);
  Alcotest.(check bool) "diff comp" false (Components.same_component g 0 3);
  Alcotest.(check bool) "path connected" true
    (Components.is_connected (Gen.path 4))

let test_gen_shapes () =
  let check_graph name g n m =
    Alcotest.(check (pair int int)) name (n, m) (Graph.order g, Graph.edge_count g)
  in
  check_graph "path" (Gen.path 5) 5 4;
  check_graph "cycle" (Gen.cycle 5) 5 5;
  check_graph "clique" (Gen.clique 5) 5 10;
  check_graph "star" (Gen.star 5) 5 4;
  check_graph "grid 3x4" (Gen.grid 3 4) 12 17;
  check_graph "binary tree" (Gen.binary_tree 7) 7 6;
  check_graph "caterpillar" (Gen.caterpillar 4 2) 12 11

let test_gen_random () =
  let rng = Random.State.make [| 7 |] in
  let t = Gen.random_tree rng 50 in
  Alcotest.(check int) "tree edges" 49 (Graph.edge_count t);
  Alcotest.(check bool) "tree connected" true (Components.is_connected t);
  let b = Gen.random_bounded_degree rng 100 3 in
  Alcotest.(check bool) "degree bound" true (Graph.max_degree b <= 3)

let test_pattern_enumerate () =
  Alcotest.(check int) "|G_3| = 8" 8 (List.length (Pattern.enumerate 3));
  Alcotest.(check int) "|G_4| = 64" 64 (List.length (Pattern.enumerate 4));
  Alcotest.(check int) "|G_0| = 1" 1 (List.length (Pattern.enumerate 0));
  let connected3 =
    List.filter Pattern.connected (Pattern.enumerate 3)
  in
  Alcotest.(check int) "connected patterns on 3" 4 (List.length connected3)

let test_pattern_components () =
  let p = Pattern.make 5 [ (0, 1); (3, 4) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ]
    (Pattern.components p);
  Alcotest.(check bool) "not connected" false (Pattern.connected p);
  Alcotest.(check (list int)) "component_of 4" [ 3; 4 ] (Pattern.component_of p 4);
  let ind = Pattern.induced p [ 0; 1; 3 ] in
  Alcotest.(check (list (pair int int))) "induced edges" [ (0, 1) ] (Pattern.edges ind)

let test_pattern_of_tuple () =
  let g = Gen.path 10 in
  let close u v = Bfs.dist_le g u v 2 in
  let p = Pattern.of_tuple close [| 0; 1; 8 |] in
  Alcotest.(check bool) "0~1" true (Pattern.mem_edge p 0 1);
  Alcotest.(check bool) "0~8 far" false (Pattern.mem_edge p 0 2);
  (* equal elements are always joined *)
  let p2 = Pattern.of_tuple (fun _ _ -> false) [| 3; 3 |] in
  Alcotest.(check bool) "equal joined" true (Pattern.mem_edge p2 0 1)

let test_pattern_merges () =
  let p = Pattern.make 3 [ (0, 1) ] in
  (* split {0,1} vs {2}: cross pairs (0,2),(1,2); nonempty subsets: 3 *)
  let hs = Pattern.merges p ([ 0; 1 ], [ 2 ]) in
  Alcotest.(check int) "3 merge patterns" 3 (List.length hs);
  List.iter
    (fun h ->
      Alcotest.(check bool) "keeps inner edge" true (Pattern.mem_edge h 0 1);
      Alcotest.(check bool) "differs from p" false (Pattern.equal h p))
    hs

let prop_pattern_components_partition =
  QCheck.Test.make ~name:"pattern components partition positions" ~count:200
    QCheck.(pair (int_range 1 5) (int_range 0 1023))
    (fun (k, seed) ->
      let all = Pattern.enumerate k in
      let p = List.nth all (seed mod List.length all) in
      let flat = List.sort compare (List.concat (Pattern.components p)) in
      flat = List.init k (fun i -> i))

let () =
  Alcotest.run "foc_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create/dedup" `Quick test_create_dedup;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "union" `Quick test_union;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_path;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "ball_tbl = distances" `Quick test_ball_tbl_matches_distances;
          Alcotest.test_case "tuple_connected" `Quick test_tuple_connected;
        ] );
      ("components", [ Alcotest.test_case "basics" `Quick test_components ]);
      ( "gen",
        [
          Alcotest.test_case "shapes" `Quick test_gen_shapes;
          Alcotest.test_case "random" `Quick test_gen_random;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "enumerate" `Quick test_pattern_enumerate;
          Alcotest.test_case "components" `Quick test_pattern_components;
          Alcotest.test_case "of_tuple" `Quick test_pattern_of_tuple;
          Alcotest.test_case "merges" `Quick test_pattern_merges;
          QCheck_alcotest.to_alcotest prop_pattern_components_partition;
        ] );
    ]
