(* Tests for the two reference engines: Naive (Definition 3.1 verbatim) and
   Relalg (bottom-up tables), including the cross-engine agreement
   property. *)

open Foc_logic
open Foc_data
open Ast

let preds = Pred.standard

(* A small fixed structure: directed 4-cycle with a colour. *)
let cyc4 =
  Structure.create
    (Signature.of_list [ ("E", 2); ("P", 1) ])
    ~order:4
    [
      ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 0 |] ]);
      ("P", [ [| 0 |]; [| 2 |] ]);
    ]

let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s
let holds_naive s = Foc_eval.Naive.sentence preds cyc4 (parse s)
let value_naive s = Foc_eval.Naive.ground_term preds cyc4 (parse_t s)

let test_naive_sentences () =
  Alcotest.(check bool) "every node has successor" true
    (holds_naive "forall x. exists y. E(x,y)");
  Alcotest.(check bool) "no self loop" true (holds_naive "!(exists x. E(x,x))");
  Alcotest.(check bool) "P not universal" false (holds_naive "forall x. P(x)");
  Alcotest.(check bool) "true" true (holds_naive "true");
  Alcotest.(check bool) "false" false (holds_naive "false")

let test_naive_counting () =
  Alcotest.(check int) "4 nodes" 4 (value_naive "#(x). x = x");
  Alcotest.(check int) "4 edges" 4 (value_naive "#(x,y). E(x,y)");
  Alcotest.(check int) "2 coloured" 2 (value_naive "#(x). P(x)");
  Alcotest.(check int) "arith" 14 (value_naive "2 + 3 * #(x). x = x");
  Alcotest.(check int) "empty count of true" 1 (value_naive "#(). true");
  Alcotest.(check int) "silent variable multiplies" 16 (value_naive "#(x,y). x = x");
  (* Example 3.2: nodes+edges = 8, not prime *)
  Alcotest.(check bool) "prime(8) false" false
    (holds_naive "prime(#(x). x = x + #(x,y). E(x,y))")

let test_naive_env () =
  let env = Foc_eval.Naive.env_of_list [ ("x", 0) ] in
  Alcotest.(check bool) "E(x,y) with x=0 via exists" true
    (Foc_eval.Naive.formula preds cyc4 env (parse "exists y. E(x,y)"));
  Alcotest.(check int) "out-degree of 0" 1
    (Foc_eval.Naive.term preds cyc4 env (parse_t "#(z). E(x,z)"));
  Alcotest.check_raises "unbound" (Foc_eval.Naive.Unbound "w") (fun () ->
      ignore (Foc_eval.Naive.formula preds cyc4 env (parse "E(w,w)")))

let test_naive_dist () =
  (* cyc4 is an undirected 4-cycle in the Gaifman sense *)
  let env = Foc_eval.Naive.env_of_list [ ("x", 0); ("y", 2) ] in
  Alcotest.(check bool) "dist(0,2) <= 2" true
    (Foc_eval.Naive.formula preds cyc4 env (parse "dist(x,y) <= 2"));
  Alcotest.(check bool) "dist(0,2) <= 1" false
    (Foc_eval.Naive.formula preds cyc4 env (parse "dist(x,y) <= 1"))

let test_table_ops () =
  let t1 = Foc_eval.Table.of_rows [| "x"; "y" |] [ [| 0; 1 |]; [| 1; 2 |] ] in
  let t2 = Foc_eval.Table.of_rows [| "y"; "z" |] [ [| 1; 5 |]; [| 9; 9 |] ] in
  let j = Foc_eval.Table.join t1 t2 in
  Alcotest.(check int) "join row count" 1 (Foc_eval.Table.cardinal j);
  Alcotest.(check (list string)) "join columns" [ "x"; "y"; "z" ]
    (Array.to_list (Foc_eval.Table.vars j));
  let p = Foc_eval.Table.project t1 [| "y" |] in
  Alcotest.(check int) "project" 2 (Foc_eval.Table.cardinal p);
  let c = Foc_eval.Table.complement t1 3 in
  Alcotest.(check int) "complement" 7 (Foc_eval.Table.cardinal c);
  let b = Foc_eval.Table.bind t1 [ ("x", 1) ] in
  Alcotest.(check int) "bind" 1 (Foc_eval.Table.cardinal b);
  let e = Foc_eval.Table.extend_full t1 2 [| "w" |] in
  Alcotest.(check int) "extend" 4 (Foc_eval.Table.cardinal e);
  Alcotest.(check bool) "unit nonempty" false (Foc_eval.Table.is_empty Foc_eval.Table.unit);
  Alcotest.(check bool) "zero empty" true (Foc_eval.Table.is_empty Foc_eval.Table.zero)

let test_relalg_matches_naive_fixed () =
  let sentences =
    [
      "forall x. exists y. E(x,y)";
      "exists x. P(x) & (exists y. E(x,y) & P(y))";
      "!(exists x y. E(x,y) & E(y,x))";
      "prime(#(x). P(x))";
      "#(x,y). E(x,y) == #(x). x = x";
      "exists x. prime(#(z). E(x,z), ) | true";
    ]
  in
  (* last entry is deliberately unparseable: filter through the result API *)
  List.iter
    (fun s ->
      match Parser.formula_result preds s with
      | Error _ -> ()
      | Ok f ->
          Alcotest.(check bool)
            ("agree: " ^ s)
            (Foc_eval.Naive.sentence preds cyc4 f)
            (Foc_eval.Relalg.holds preds cyc4 [] f))
    sentences

let test_relalg_query () =
  (* out-degree of every node: {(x, #(z).E(x,z)) : x = x} *)
  let q =
    Query.make ~head_vars:[ "x" ]
      ~head_terms:[ parse_t "#(z). E(x,z)" ]
      (parse "x = x")
  in
  let rows = Foc_eval.Relalg.query preds cyc4 q in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  List.iter
    (fun (_, vals) -> Alcotest.(check (array int)) "deg 1" [| 1 |] vals)
    rows;
  let naive_rows = Foc_eval.Naive.query preds cyc4 q in
  Alcotest.(check bool) "naive query agrees" true (naive_rows = rows)

(* --- the agreement property: random small structures, random formulas --- *)

let sign_rand = Signature.of_list [ ("E", 2); ("P", 1) ]

let gen_var = QCheck.Gen.oneofl [ "x"; "y"; "z" ]

(* closed-ish formulas: we quantify the free rest away at the end *)
let gen_formula =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self (size, depth) ->
            let atom =
              oneof
                [
                  map2 (fun a b -> Eq (a, b)) gen_var gen_var;
                  map2 (fun a b -> Rel ("E", [| a; b |])) gen_var gen_var;
                  map (fun a -> Rel ("P", [| a |])) gen_var;
                  map3 (fun a b d -> Dist (a, b, d)) gen_var gen_var (int_range 0 3);
                ]
            in
            if size <= 1 then atom
            else begin
              let sub = self (size / 2, depth) in
              let smaller = self (size - 1, depth) in
              let base =
                [
                  atom;
                  map (fun f -> Neg f) smaller;
                  map2 (fun f g -> Or (f, g)) sub sub;
                  map2 (fun f g -> And (f, g)) sub sub;
                  map2 (fun v f -> Exists (v, f)) gen_var smaller;
                  map2 (fun v f -> Forall (v, f)) gen_var smaller;
                ]
              in
              let counting =
                let body = self (size / 2, depth + 1) in
                let t =
                  oneof
                    [
                      map2 (fun v f -> Count ([ v ], f)) gen_var body;
                      map (fun i -> Int i) (int_range 0 3);
                    ]
                in
                [
                  map (fun t -> Pred ("ge1", [ t ])) t;
                  map2 (fun s t' -> Pred ("le", [ s; t' ])) t t;
                ]
              in
              oneof (if depth < 1 then base @ counting else base)
            end)
          (size, 0)))

let close f = Ast.forall (Var.Set.elements (free_formula f)) f

let gen_structure =
  QCheck.Gen.(
    map2
      (fun n seed ->
        let rng = Random.State.make [| seed |] in
        Db_gen.random_structure rng sign_rand ~order:n ~tuples:(2 * n))
      (int_range 1 5) int)

let arb_pair =
  QCheck.make
    ~print:(fun (f, a) ->
      Pp.formula_to_string (close f) ^ "\non\n" ^ Format.asprintf "%a" Structure.pp a)
    QCheck.Gen.(pair gen_formula gen_structure)

let prop_engines_agree =
  QCheck.Test.make ~name:"naive = relalg on random sentences" ~count:300
    arb_pair (fun (f, a) ->
      let f = close f in
      Foc_eval.Naive.sentence preds a f = Foc_eval.Relalg.holds preds a [] f)

let gen_term =
  QCheck.Gen.(
    map2
      (fun vs f ->
        let vs = List.sort_uniq compare vs in
        Count (vs, f))
      (list_size (int_range 0 2) gen_var)
      gen_formula)

let arb_term_pair =
  QCheck.make
    ~print:(fun (t, a) ->
      let closed =
        Ast.Count (Var.Set.elements (free_term t), Ast.True)
        |> fun _ -> Pp.term_to_string t
      in
      closed ^ "\non\n" ^ Format.asprintf "%a" Structure.pp a)
    QCheck.Gen.(pair gen_term gen_structure)

let prop_term_engines_agree =
  QCheck.Test.make ~name:"naive = relalg on random ground terms" ~count:300
    arb_term_pair (fun (t, a) ->
      (* close the term by counting all its free variables *)
      let t =
        match Var.Set.elements (free_term t) with
        | [] -> t
        | fvs -> Count (fvs, Pred ("ge1", [ t ]))
      in
      Foc_eval.Naive.ground_term preds a t
      = Foc_eval.Relalg.term_value preds a [] t)

let () =
  Alcotest.run "foc_eval"
    [
      ( "naive",
        [
          Alcotest.test_case "sentences" `Quick test_naive_sentences;
          Alcotest.test_case "counting" `Quick test_naive_counting;
          Alcotest.test_case "environments" `Quick test_naive_env;
          Alcotest.test_case "distance atoms" `Quick test_naive_dist;
        ] );
      ("table", [ Alcotest.test_case "operations" `Quick test_table_ops ]);
      ( "relalg",
        [
          Alcotest.test_case "fixed agreement" `Quick test_relalg_matches_naive_fixed;
          Alcotest.test_case "query" `Quick test_relalg_query;
        ] );
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_term_engines_agree;
        ] );
    ]
