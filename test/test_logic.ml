(* Tests for foc_logic: AST operations, measures, fragments, queries,
   distance formulas, predicates. *)

open Foc_logic
open Ast

let fml = Alcotest.testable (fun ppf f -> Pp.formula ppf f) equal_formula

let test_smart_constructors () =
  Alcotest.check fml "neg true" False (neg True);
  Alcotest.check fml "double neg" (Eq ("x", "y")) (neg (neg (Eq ("x", "y"))));
  Alcotest.check fml "and true" (Eq ("x", "y")) (and_ True (Eq ("x", "y")));
  Alcotest.check fml "and false" False (and_ (Eq ("x", "y")) False);
  Alcotest.check fml "or false" (Eq ("x", "y")) (or_ False (Eq ("x", "y")));
  Alcotest.check fml "big_and []" True (big_and []);
  Alcotest.check fml "big_or []" False (big_or []);
  Alcotest.check_raises "count repeated var"
    (Invalid_argument "Ast.count: repeated bound variable") (fun () ->
      ignore (count [ "y"; "y" ] True))

let test_free_vars () =
  let f =
    Exists ("z", And (Rel ("E", [| "x"; "z" |]), Eq ("z", "y")))
  in
  Alcotest.(check (list string)) "free" [ "x"; "y" ]
    (Var.Set.elements (free_formula f));
  let t = Count ([ "y" ], Rel ("E", [| "x"; "y" |])) in
  Alcotest.(check (list string)) "term free" [ "x" ] (Var.Set.elements (free_term t));
  (* Pred free vars flow through terms *)
  let p = Pred ("eq", [ t; Int 3 ]) in
  Alcotest.(check (list string)) "pred free" [ "x" ] (Var.Set.elements (free_formula p))

let test_rename_capture () =
  (* rename x -> y inside exists y: the binder must be α-renamed *)
  let f = Exists ("y", Rel ("E", [| "x"; "y" |])) in
  let g = rename_formula (Var.Map.singleton "x" "y") f in
  (match g with
  | Exists (y', Rel ("E", [| "y"; y'' |])) ->
      Alcotest.(check bool) "fresh binder" true (y' <> "y" && y' = y'')
  | _ -> Alcotest.fail "unexpected shape");
  (* no clash: binder kept *)
  let h = rename_formula (Var.Map.singleton "x" "w") f in
  Alcotest.check fml "no capture" (Exists ("y", Rel ("E", [| "w"; "y" |]))) h

let test_rename_count () =
  let t = Count ([ "y" ], Rel ("E", [| "x"; "y" |])) in
  match rename_term (Var.Map.singleton "x" "y") t with
  | Count ([ y' ], Rel ("E", [| "y"; y'' |])) ->
      Alcotest.(check bool) "fresh count binder" true (y' <> "y" && y' = y'')
  | _ -> Alcotest.fail "unexpected shape"

let test_strictify () =
  let expand x y d = Dist (x, y, d) in
  (* And/Forall/True disappear *)
  let f = Forall ("x", And (True, Rel ("P", [| "x" |]))) in
  let s = Ast.strictify expand f in
  let uses_sugar =
    Ast.exists_subformula
      (function True | False | And _ | Forall _ -> true | _ -> false)
      s
  in
  Alcotest.(check bool) "strict grammar" false uses_sugar

let test_measures () =
  let t_deg = Count ([ "z" ], Rel ("E", [| "y"; "z" |])) in
  let f = Pred ("ge1", [ t_deg ]) in
  Alcotest.(check int) "#-depth 1" 1 (Measure.sharp_depth_formula f);
  let nested = Pred ("eq", [ Count ([ "y" ], f); Int 2 ]) in
  Alcotest.(check int) "#-depth 2" 2 (Measure.sharp_depth_formula nested);
  Alcotest.(check int) "qr counts count-binders" 2 (Measure.quantifier_rank nested);
  Alcotest.(check int) "plain qr" 1 (Measure.quantifier_rank (Exists ("x", True)));
  Alcotest.(check bool) "size positive" true (Measure.size_formula nested > 5)

let test_q_rank () =
  (* f_q saturates instead of overflowing *)
  Alcotest.(check int) "f_q 1 0 = 4" 4 (Measure.f_q 1 0);
  Alcotest.(check int) "f_q 2 1 = 8^3" 512 (Measure.f_q 2 1);
  Alcotest.(check bool) "saturates" true (Measure.f_q 20 40 = max_int);
  let phi = Exists ("x", Dist ("x", "y", 4)) in
  (* q=1, l=1: the atom sits under 1 quantifier; bound (4q)^(q+l-1) = 4 *)
  Alcotest.(check bool) "q-rank ok" true (Measure.has_q_rank ~q:1 ~l:1 phi);
  let phi_bad = Exists ("x", Dist ("x", "y", 5)) in
  Alcotest.(check bool) "q-rank violated" false (Measure.has_q_rank ~q:1 ~l:1 phi_bad);
  Alcotest.(check bool) "qr too high" false
    (Measure.has_q_rank ~q:2 ~l:0 (Exists ("x", True)))

let test_fragments () =
  let fo = Exists ("x", Rel ("E", [| "x"; "y" |])) in
  Alcotest.(check bool) "fo" true (Fragment.is_fo fo);
  Alcotest.(check bool) "fo_plus" true (Fragment.is_fo_plus (Dist ("x", "y", 2)));
  Alcotest.(check bool) "dist not fo" false (Fragment.is_fo (Dist ("x", "y", 2)));
  (* FOC1: Example 3.2's prime-degree formula is in FOC1 *)
  let deg v = Count ([ "z" ], Rel ("E", [| v; "z" |])) in
  let f1 = Pred ("prime", [ Add (Count ([ "x" ], Eq ("x", "x")), deg "y") ]) in
  Alcotest.(check bool) "foc1 yes" true (Fragment.is_foc1 f1);
  (* ψ_E of Theorem 4.1 uses two free variables in one predicate: not FOC1 *)
  let psi_e = Pred ("eq", [ deg "x"; deg "x'" ]) in
  Alcotest.(check bool) "foc1 no" false (Fragment.is_foc1 psi_e);
  (* nested violation inside a counting term is caught *)
  let hidden = Pred ("ge1", [ Count ([ "u" ], psi_e) ]) in
  Alcotest.(check bool) "nested violation" false (Fragment.is_foc1 hidden);
  Alcotest.(check bool) "existential" true
    (Fragment.is_existential (Exists ("x", And (Rel ("P", [| "x" |]), Neg (Eq ("x", "x"))))));
  Alcotest.(check bool) "not existential" false
    (Fragment.is_existential (Forall ("x", Rel ("P", [| "x" |]))))

let test_well_formed () =
  let sign = Foc_data.Signature.of_list [ ("E", 2) ] in
  let ok = Fragment.well_formed sign Pred.standard (Rel ("E", [| "x"; "y" |])) in
  Alcotest.(check bool) "ok" true (Result.is_ok ok);
  let bad_arity = Fragment.well_formed sign Pred.standard (Rel ("E", [| "x" |])) in
  Alcotest.(check bool) "bad arity" true (Result.is_error bad_arity);
  let bad_pred =
    Fragment.well_formed sign Pred.standard (Pred ("nope", [ Int 1 ]))
  in
  Alcotest.(check bool) "unknown pred" true (Result.is_error bad_pred);
  let bad_nested =
    Fragment.well_formed sign Pred.standard
      (Pred ("ge1", [ Count ([ "x" ], Rel ("Q", [| "x" |])) ]))
  in
  Alcotest.(check bool) "nested unknown rel" true (Result.is_error bad_nested)

let test_pred_collection () =
  Alcotest.(check bool) "ge1" true (Pred.holds Pred.standard "ge1" [| 3 |]);
  Alcotest.(check bool) "ge1 false" false (Pred.holds Pred.standard "ge1" [| 0 |]);
  Alcotest.(check bool) "eq" true (Pred.holds Pred.standard "eq" [| -2; -2 |]);
  Alcotest.(check bool) "prime" true (Pred.holds Pred.standard "prime" [| 13 |]);
  Alcotest.(check bool) "divides" true (Pred.holds Pred.standard "divides" [| 3; 9 |]);
  Alcotest.(check bool) "divides 0" false (Pred.holds Pred.standard "divides" [| 0; 9 |]);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Pred.holds: arity mismatch for eq") (fun () ->
      ignore (Pred.holds Pred.standard "eq" [| 1 |]));
  Alcotest.(check bool) "minimal has ge1" true (Pred.mem Pred.minimal "ge1");
  Alcotest.(check bool) "minimal lacks eq" false (Pred.mem Pred.minimal "eq")

let test_delta () =
  let p = Foc_graph.Pattern.make 3 [ (0, 1) ] in
  let f = Dist_formula.delta ~r:5 p [ "a"; "b"; "c" ] in
  (* one positive atom, two negated *)
  let rec count_pos = function
    | Dist (_, _, 5) -> (1, 0)
    | Neg (Dist (_, _, 5)) -> (0, 1)
    | And (f, g) ->
        let p1, n1 = count_pos f and p2, n2 = count_pos g in
        (p1 + p2, n1 + n2)
    | _ -> (0, 0)
  in
  Alcotest.(check (pair int int)) "atoms" (1, 2) (count_pos f)

let test_query_construction () =
  let body = Rel ("P", [| "x" |]) in
  let t = Count ([ "y" ], Rel ("E", [| "x"; "y" |])) in
  let q = Query.make ~head_vars:[ "x" ] ~head_terms:[ t ] body in
  Alcotest.(check bool) "foc1 query" true (Query.is_foc1 q);
  Alcotest.check_raises "repeated head var"
    (Invalid_argument "Query.make: repeated head variable") (fun () ->
      ignore (Query.make ~head_vars:[ "x"; "x" ] ~head_terms:[] body));
  Alcotest.check_raises "stray free var in term"
    (Invalid_argument "Query.make: head term with non-head free variable")
    (fun () -> ignore (Query.make ~head_vars:[] ~head_terms:[ t ] True))

let test_query_eliminate () =
  let t = Count ([ "y" ], Rel ("E", [| "x"; "y" |])) in
  let q =
    Query.make ~head_vars:[ "x" ] ~head_terms:[ t ] (Rel ("P", [| "x" |]))
  in
  let e = Query.eliminate q in
  Alcotest.(check (list string)) "markers" [ "$X1" ] e.markers;
  Alcotest.(check bool) "sentence closed" true
    (Var.Set.is_empty (free_formula e.sentence));
  List.iter
    (fun gt ->
      Alcotest.(check bool) "terms ground" true (Var.Set.is_empty (free_term gt)))
    e.ground_terms;
  (* binder clash: counting over the head variable itself *)
  let t2 = Count ([ "x" ], Rel ("P", [| "x" |])) in
  let q2 = Query.make ~head_vars:[ "x" ] ~head_terms:[ t2 ] (Eq ("x", "x")) in
  let e2 = Query.eliminate q2 in
  List.iter
    (fun gt ->
      Alcotest.(check bool) "clash handled" true (Var.Set.is_empty (free_term gt)))
    e2.ground_terms

let () =
  Alcotest.run "foc_logic"
    [
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "rename capture" `Quick test_rename_capture;
          Alcotest.test_case "rename count" `Quick test_rename_count;
          Alcotest.test_case "strictify" `Quick test_strictify;
        ] );
      ( "measure",
        [
          Alcotest.test_case "sizes/depths" `Quick test_measures;
          Alcotest.test_case "q-rank" `Quick test_q_rank;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "recognizers" `Quick test_fragments;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
        ] );
      ("pred", [ Alcotest.test_case "collection" `Quick test_pred_collection ]);
      ("dist", [ Alcotest.test_case "delta" `Quick test_delta ]);
      ( "query",
        [
          Alcotest.test_case "construction" `Quick test_query_construction;
          Alcotest.test_case "eliminate" `Quick test_query_eliminate;
        ] );
    ]
