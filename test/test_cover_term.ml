(* Cover-based cl-term evaluation (Definitions 7.4/7.5 operationally):
   agreement with the direct neighbourhood sweep, cover-radius requirements,
   and the soundness of evaluating inside clusters. *)

open Foc_logic
open Foc_local
module Structure = Foc_data.Structure

let preds = Pred.standard
let parse s = Parser.formula preds s

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc_data.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let decompose_unary vars src =
  let body = parse src in
  let r =
    match Locality.formula_radius body with
    | Locality.Local r -> r
    | Locality.Nonlocal w -> Alcotest.fail w
  in
  match Decompose.unary_count ~r ~vars body with
  | Some cl -> cl
  | None -> Alcotest.fail ("decomposition failed: " ^ src)

let check_agreement name a cl =
  let rc = Cover_term.required_cover_radius cl in
  let cover = Foc_graph.Cover.make (Structure.gaifman a) ~r:rc in
  let direct =
    let ctx = Pattern_count.make_ctx preds a ~r:(max 1 rc) in
    ignore ctx;
    (* re-derive the basic radius through the clterm itself *)
    let rec basic_r = function
      | Clterm.Const _ -> 0
      | Clterm.Ground b | Clterm.Unary b -> b.Clterm.radius
      | Clterm.Add (s, t) | Clterm.Mul (s, t) -> max (basic_r s) (basic_r t)
    in
    let ctx = Pattern_count.make_ctx preds a ~r:(basic_r cl) in
    Clterm.eval_unary ctx cl
  in
  let covered = Cover_term.eval_unary preds a cover cl in
  Alcotest.(check (array int)) name direct covered

let test_agreement_tree () =
  let rng = Random.State.make [| 7 |] in
  let a = coloured 7 (Foc_graph.Gen.random_tree rng 120) in
  check_agreement "degree term" a
    (decompose_unary [ "x"; "y" ] "E(x,y) & B(y)");
  check_agreement "scattered term" a
    (decompose_unary [ "x"; "y" ] "B(y) & R(x)");
  check_agreement "two counted" a
    (decompose_unary [ "x"; "y"; "z" ] "E(x,y) & E(y,z)")

let test_agreement_grid () =
  let a = coloured 8 (Foc_graph.Gen.grid 9 10) in
  check_agreement "grid degree" a
    (decompose_unary [ "x"; "y" ] "E(x,y) & !B(y)")

let test_ground_agreement () =
  let rng = Random.State.make [| 9 |] in
  let a = coloured 9 (Foc_graph.Gen.random_bounded_degree rng 90 3) in
  let body = parse "E(u,v) | (R(u) & B(v))" in
  let r =
    match Locality.formula_radius body with
    | Locality.Local r -> r
    | Locality.Nonlocal w -> Alcotest.fail w
  in
  match Decompose.ground_count ~r ~vars:[ "u"; "v" ] body with
  | None -> Alcotest.fail "decomposition failed"
  | Some cl ->
      let rc = Cover_term.required_cover_radius cl in
      let cover = Foc_graph.Cover.make (Structure.gaifman a) ~r:rc in
      let expected = Foc_eval.Relalg.count preds a [ "u"; "v" ] body in
      Alcotest.(check int) "ground count" expected
        (Cover_term.eval_ground preds a cover cl)

let test_radius_requirement () =
  let a = coloured 10 (Foc_graph.Gen.path 30) in
  let cl = decompose_unary [ "x"; "y" ] "E(x,y) & B(y)" in
  let needed = Cover_term.required_cover_radius cl in
  Alcotest.(check bool) "positive requirement" true (needed >= 1);
  let small_cover =
    Foc_graph.Cover.make (Structure.gaifman a) ~r:(needed - 1)
  in
  Alcotest.check_raises "undersized cover rejected"
    (Invalid_argument
       (Printf.sprintf
          "Cover_term: cover parameter %d smaller than required %d"
          (needed - 1) needed))
    (fun () -> ignore (Cover_term.eval_unary preds a small_cover cl))

let test_sentence_leaf () =
  let a = coloured 11 (Foc_graph.Gen.path 10) in
  (* a 0-width ground leaf (sentence) inside a polynomial *)
  let sentence_basic =
    Clterm.basic
      ~pattern:(Foc_graph.Pattern.make 0 [])
      ~radius:0 ~vars:[] ~body:Ast.True
  in
  let cl = Clterm.Mul (Clterm.Const 5, Clterm.Ground sentence_basic) in
  let cover = Foc_graph.Cover.make (Structure.gaifman a) ~r:0 in
  Alcotest.(check int) "5 * [true]" 5 (Cover_term.eval_ground preds a cover cl)

let prop_cover_vs_direct =
  QCheck.Test.make ~name:"cover sweep = direct sweep on random graphs"
    ~count:25
    QCheck.(pair (int_range 10 60) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      let cl = decompose_unary [ "x"; "y" ] "E(x,y) & B(y)" in
      let ctx = Pattern_count.make_ctx preds a ~r:1 in
      let direct = Clterm.eval_unary ctx cl in
      let rc = Cover_term.required_cover_radius cl in
      let cover = Foc_graph.Cover.make (Structure.gaifman a) ~r:rc in
      direct = Cover_term.eval_unary preds a cover cl)

let () =
  Alcotest.run "foc_local cover_term"
    [
      ( "agreement",
        [
          Alcotest.test_case "tree" `Quick test_agreement_tree;
          Alcotest.test_case "grid" `Quick test_agreement_grid;
          Alcotest.test_case "ground" `Quick test_ground_agreement;
          QCheck_alcotest.to_alcotest prop_cover_vs_direct;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "radius requirement" `Quick test_radius_requirement;
          Alcotest.test_case "sentence leaf" `Quick test_sentence_leaf;
        ] );
    ]
