(* Streaming answer enumeration (lib/eval/enum.ml + Engine.enumerate +
   Session.enumerate): the cursor must be bit-identical — content AND
   order — to the materialised Relalg.query / Engine.run_query answer
   list, on every back-end, jobs setting, limit/after split, and both on
   a cold engine and a warm session. Plus the canonical-order regression
   (ascending lexicographic head tuples) the cursor contract rests on,
   and the version-pinning contract of session cursors. *)

open Foc_logic
open QCheck.Gen

let preds = Pred.standard
let sign = Foc_data.Signature.of_list [ ("E", 2); ("B", 1); ("C", 1); ("R", 1) ]

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  let n = Foc_graph.Graph.order g in
  let colour p =
    List.filter_map
      (fun v -> if Random.State.float rng 1.0 < p then Some [| v |] else None)
      (List.init n (fun i -> i))
  in
  let edges =
    List.concat_map
      (fun (u, v) -> [ [| u; v |]; [| v; u |] ])
      (Foc_graph.Graph.edges g)
  in
  Foc_data.Structure.create sign ~order:n
    [ ("E", edges); ("B", colour 0.4); ("C", colour 0.3); ("R", colour 0.25) ]

let gen_structure =
  int_range 6 26 >>= fun n ->
  int_range 0 9999 >>= fun seed ->
  let rng = Random.State.make [| n; seed |] in
  let g =
    if seed mod 3 = 0 then Foc_graph.Gen.random_tree rng n
    else Foc_graph.Gen.random_bounded_degree rng n 3
  in
  return (coloured seed g)

(* ---------------- query generator ---------------- *)

let unary_rel = oneofl [ "B"; "C"; "R" ]

(* one atom over the in-scope variables — the walkable alphabet *)
let gen_atom vars =
  oneof
    [
      map2 (fun r v -> Ast.Rel (r, [| v |])) unary_rel (oneofl vars);
      map2 (fun u v -> Ast.Rel ("E", [| u; v |])) (oneofl vars) (oneofl vars);
      map2 (fun u v -> Ast.Eq (u, v)) (oneofl vars) (oneofl vars);
      map3
        (fun u v d -> Ast.Dist (u, v, d))
        (oneofl vars) (oneofl vars) (int_range 0 2);
      return Ast.True;
    ]

let rec chain = function
  | [] -> Ast.True
  | [ a ] -> a
  | a :: rest -> Ast.And (a, chain rest)

(* conjunctive bodies take the walk producer; the rest (disjunction, a
   guarded quantifier) take the materialise-and-stream fallback — the
   property must hold for both *)
let gen_body vars =
  int_range 1 4 >>= fun k ->
  list_repeat k (gen_atom vars) >>= fun atoms ->
  frequency
    [
      (3, return (chain atoms));
      ( 1,
        gen_atom vars >>= fun extra ->
        return (Ast.Or (chain atoms, extra)) );
      ( 1,
        oneofl vars >>= fun anchor ->
        gen_atom ("w" :: vars) >>= fun inner ->
        return
          (Ast.And
             ( chain atoms,
               Ast.Exists ("w", Ast.And (Ast.Rel ("E", [| anchor; "w" |]), inner))
             )) );
    ]

let gen_terms vars =
  int_range 0 2 >>= fun k ->
  list_repeat k
    ( oneofl vars >>= fun v ->
      oneof
        [
          return (Ast.Count ([ "u" ], Ast.Rel ("E", [| v; "u" |])));
          map (fun c -> Ast.Int c) (int_range 0 3);
          return
            (Ast.Count
               ( [ "u" ],
                 Ast.And
                   (Ast.Rel ("E", [| v; "u" |]), Ast.Rel ("B", [| "u" |])) ));
        ] )

let gen_query =
  int_range 1 3 >>= fun nvars ->
  let vars = List.filteri (fun i _ -> i < nvars) [ "x"; "y"; "z" ] in
  gen_body vars >>= fun body ->
  gen_terms vars >>= fun terms ->
  return (Query.make ~head_vars:vars ~head_terms:terms body)

let print_case (q, a) =
  Format.asprintf "%a  on |A|=%d" Query.pp q (Foc_data.Structure.order a)

(* ---------------- the agreement property ---------------- *)

let backends =
  [
    ("direct", Foc_nd.Engine.Direct);
    ("cover", Foc_nd.Engine.Cover);
    ("splitter", Foc_nd.Engine.Splitter { max_rounds = 2; small = 6 });
    ("hanf", Foc_nd.Engine.Hanf);
  ]

let engine ~backend ~jobs =
  Foc_nd.Engine.create
    ~config:{ Foc_nd.Engine.default_config with backend; jobs; ball_cache_mb = 8 }
    ()

let rows_eq (t1, v1) (t2, v2) = t1 = (t2 : int array) && v1 = (v2 : int array)

let check_rows ~what want got =
  if
    List.length want <> List.length got
    || not (List.for_all2 rows_eq want got)
  then
    QCheck.Test.fail_reportf "%s: %d streamed rows vs %d materialised" what
      (List.length got) (List.length want)

let slice ?limit ?after rows =
  let tail =
    match after with
    | None -> rows
    | Some a -> List.filter (fun (t, _) -> compare t a > 0) rows
  in
  match limit with
  | None -> tail
  | Some l -> List.filteri (fun i _ -> i < l) tail

let prop_enumerate_agrees =
  QCheck.Test.make ~name:"enumerate = Relalg.query (all back-ends, jobs, splits)"
    ~count:25
    (QCheck.make ~print:print_case (pair gen_query gen_structure))
    (fun (q, a) ->
      let want = Foc_eval.Relalg.query preds a q in
      List.iter
        (fun (bname, backend) ->
          List.iter
            (fun jobs ->
              let eng = engine ~backend ~jobs in
              let what = Printf.sprintf "%s/jobs=%d" bname jobs in
              (* run_query canonical order (satellite regression) *)
              let mat = Foc_nd.Engine.run_query eng a q in
              check_rows ~what:(what ^ "/run_query") want mat;
              (* full drain *)
              let c = Foc_nd.Engine.enumerate eng a q in
              check_rows ~what want (Foc_eval.Enum.to_list c);
              (* random limit/after split derived from the answer count *)
              let n = List.length want in
              if n > 0 then begin
                let limit = 1 + ((n * 3 / 7) mod n) in
                let after = fst (List.nth want (n / 2)) in
                let c = Foc_nd.Engine.enumerate eng ~limit a q in
                check_rows ~what:(what ^ "/limit") (slice ~limit want)
                  (Foc_eval.Enum.to_list c);
                let c = Foc_nd.Engine.enumerate eng ~after a q in
                check_rows ~what:(what ^ "/after") (slice ~after want)
                  (Foc_eval.Enum.to_list c);
                let c = Foc_nd.Engine.enumerate eng ~limit ~after a q in
                check_rows
                  ~what:(what ^ "/limit+after")
                  (slice ~limit ~after want)
                  (Foc_eval.Enum.to_list c)
              end)
            [ 1; 4 ])
        backends;
      true)

(* session cursors: cold session, warm session (artifacts already built by
   a prior evaluation), and pagination through ?after across the session *)
let prop_session_agrees =
  QCheck.Test.make ~name:"Session.enumerate = Relalg.query (cold and warm)"
    ~count:15
    (QCheck.make ~print:print_case (pair gen_query gen_structure))
    (fun (q, a) ->
      let want = Foc_eval.Relalg.query preds a q in
      let s = Foc_serve.Session.create ~budget_mb:16 a in
      (* cold *)
      check_rows ~what:"session/cold" want
        (Foc_eval.Enum.to_list (Foc_serve.Session.enumerate s q));
      (* warm: the first drain built whatever artifacts the query needs *)
      check_rows ~what:"session/warm" want
        (Foc_eval.Enum.to_list (Foc_serve.Session.enumerate s q));
      (* page through with ?after in random page sizes *)
      let n = List.length want in
      if n > 0 then begin
        let page = 1 + (n mod 5) in
        let rec go acc after =
          let c = Foc_serve.Session.enumerate s ~limit:page ?after q in
          match Foc_eval.Enum.to_list c with
          | [] -> List.rev acc
          | rows ->
              let last, _ = List.nth rows (List.length rows - 1) in
              go (List.rev_append rows acc) (Some last)
        in
        check_rows ~what:"session/paged" want (go [] None)
      end;
      true)

(* ---------------- version pinning ---------------- *)

let test_cursor_expires () =
  let rng = Random.State.make [| 42 |] in
  let a = coloured 3 (Foc_graph.Gen.random_bounded_degree rng 20 3) in
  let q =
    Query.make ~head_vars:[ "x"; "y" ] ~head_terms:[]
      (Ast.Rel ("E", [| "x"; "y" |]))
  in
  let s = Foc_serve.Session.create ~budget_mb:16 a in
  let c = Foc_serve.Session.enumerate s q in
  (match c.Foc_eval.Enum.next () with
  | Some _ -> ()
  | None -> Alcotest.fail "expected at least one edge");
  let v0 = Foc_serve.Session.version s in
  Foc_serve.Session.insert s "E" [| 0; 1 |];
  Alcotest.(check int) "write bumped the version" (v0 + 1)
    (Foc_serve.Session.version s);
  (match c.Foc_eval.Enum.next () with
  | exception Foc_serve.Session.Expired -> ()
  | Some _ -> Alcotest.fail "cursor served rows across a version bump"
  | None -> Alcotest.fail "cursor silently ended across a version bump");
  c.Foc_eval.Enum.close ();
  (* a cursor opened AFTER the write sees the new snapshot *)
  let want = Foc_eval.Relalg.query preds (Foc_serve.Session.structure s) q in
  let got = Foc_eval.Enum.to_list (Foc_serve.Session.enumerate s q) in
  Alcotest.(check int) "reopened cursor reads the new version"
    (List.length want) (List.length got);
  List.iter2
    (fun (t, v) (t', v') ->
      Alcotest.(check (array int)) "tuple" t t';
      Alcotest.(check (array int)) "values" v v')
    want got

(* ---------------- canonical order (regression) ---------------- *)

let test_canonical_order () =
  let rng = Random.State.make [| 7 |] in
  let a = coloured 5 (Foc_graph.Gen.random_bounded_degree rng 24 3) in
  let q =
    Query.make ~head_vars:[ "x"; "y" ]
      ~head_terms:[ Ast.Count ([ "u" ], Ast.Rel ("E", [| "y"; "u" |])) ]
      (Ast.Rel ("E", [| "x"; "y" |]))
  in
  let check_sorted what rows =
    Alcotest.(check bool) (what ^ " non-empty") true (rows <> []);
    ignore
      (List.fold_left
         (fun prev (t, _) ->
           (match prev with
           | Some p ->
               Alcotest.(check bool)
                 (what ^ " strictly ascending lexicographic")
                 true
                 (compare (p : int array) t < 0)
           | None -> ());
           Some t)
         None rows)
  in
  check_sorted "Relalg.query" (Foc_eval.Relalg.query preds a q);
  let eng = engine ~backend:Foc_nd.Engine.Direct ~jobs:1 in
  check_sorted "Engine.run_query" (Foc_nd.Engine.run_query eng a q);
  check_sorted "Engine.enumerate"
    (Foc_eval.Enum.to_list (Foc_nd.Engine.enumerate eng a q))

(* ground heads (k = 0) stream their 0/1 answer too *)
let test_ground_head () =
  let rng = Random.State.make [| 9 |] in
  let a = coloured 2 (Foc_graph.Gen.random_bounded_degree rng 12 3) in
  let q =
    Query.make ~head_vars:[]
      ~head_terms:[ Ast.Count ([ "u"; "v" ], Ast.Rel ("E", [| "u"; "v" |])) ]
      Ast.True
  in
  let want = Foc_eval.Relalg.query preds a q in
  let eng = engine ~backend:Foc_nd.Engine.Direct ~jobs:1 in
  let got = Foc_eval.Enum.to_list (Foc_nd.Engine.enumerate eng a q) in
  Alcotest.(check int) "one row" (List.length want) (List.length got);
  List.iter2
    (fun (t, v) (t', v') ->
      Alcotest.(check (array int)) "tuple" t t';
      Alcotest.(check (array int)) "values" v v')
    want got

let () =
  Alcotest.run "enum"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_enumerate_agrees;
          QCheck_alcotest.to_alcotest prop_session_agrees;
        ] );
      ( "contract",
        [
          Alcotest.test_case "session cursor expires on write" `Quick
            test_cursor_expires;
          Alcotest.test_case "canonical lexicographic order" `Quick
            test_canonical_order;
          Alcotest.test_case "ground head streams" `Quick test_ground_head;
        ] );
    ]
