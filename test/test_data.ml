(* Tests for foc_data: signatures, structures, removal operator, string
   encodings, generators. *)

open Foc_data

let sig_ab = Signature.of_list [ ("E", 2); ("P", 1); ("Z", 0) ]

let test_signature () =
  Alcotest.(check int) "arity E" 2 (Signature.arity sig_ab "E");
  Alcotest.(check int) "cardinal" 3 (Signature.cardinal sig_ab);
  Alcotest.(check int) "size = sum of arities" 3 (Signature.size sig_ab);
  Alcotest.(check bool) "mem" true (Signature.mem sig_ab "P");
  Alcotest.(check (option int)) "unknown" None (Signature.arity_opt sig_ab "Q");
  Alcotest.check_raises "conflicting arity"
    (Invalid_argument "Signature.add: conflicting arity for E") (fun () ->
      ignore (Signature.add sig_ab "E" 3));
  Alcotest.(check bool) "subset" true
    (Signature.subset (Signature.of_list [ ("E", 2) ]) sig_ab);
  Alcotest.(check bool) "union" true
    (Signature.equal
       (Signature.union (Signature.of_list [ ("E", 2) ]) (Signature.of_list [ ("P", 1); ("Z", 0) ]))
       sig_ab)

let test_tuple () =
  Alcotest.(check bool) "lex order" true (Tuple.compare [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "length first" true (Tuple.compare [| 9 |] [| 0; 0 |] < 0);
  Alcotest.(check bool) "equal" true (Tuple.equal [| 4; 5 |] [| 4; 5 |])

let mk_struct () =
  Structure.create sig_ab ~order:4
    [ ("E", [ [| 0; 1 |]; [| 1; 2 |] ]); ("P", [ [| 3 |] ]); ("Z", [ [||] ]) ]

let test_structure_basics () =
  let a = mk_struct () in
  Alcotest.(check int) "order" 4 (Structure.order a);
  Alcotest.(check int) "size" 8 (Structure.size a);
  Alcotest.(check bool) "mem E(0,1)" true (Structure.mem a "E" [| 0; 1 |]);
  Alcotest.(check bool) "not E(1,0)" false (Structure.mem a "E" [| 1; 0 |]);
  Alcotest.(check bool) "0-ary holds" true (Structure.mem a "Z" [||]);
  Alcotest.check_raises "unknown symbol"
    (Invalid_argument "Structure.rel: unknown symbol Q") (fun () ->
      ignore (Structure.rel a "Q"));
  Alcotest.check_raises "tuple out of range"
    (Invalid_argument "Structure: element out of universe in relation E")
    (fun () ->
      ignore (Structure.create sig_ab ~order:2 [ ("E", [ [| 0; 5 |] ]) ]))

let test_gaifman () =
  let a = mk_struct () in
  let g = Structure.gaifman a in
  Alcotest.(check int) "gaifman edges" 2 (Foc_graph.Graph.edge_count g);
  Alcotest.(check int) "dist 0-2" 2 (Structure.dist a 0 2);
  Alcotest.(check int) "3 isolated" Foc_graph.Bfs.infinity (Structure.dist a 0 3);
  Alcotest.(check bool) "dist_le" true (Structure.dist_le a 0 2 2);
  (* a ternary tuple creates a triangle *)
  let sg = Signature.of_list [ ("T", 3) ] in
  let b = Structure.create sg ~order:3 [ ("T", [ [| 0; 1; 2 |] ]) ] in
  Alcotest.(check int) "triangle" 3 (Foc_graph.Graph.edge_count (Structure.gaifman b))

let test_induced () =
  let a = mk_struct () in
  let sub, old_of_new = Structure.induced a [ 0; 1; 3 ] in
  Alcotest.(check int) "order" 3 (Structure.order sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] old_of_new;
  Alcotest.(check bool) "kept E(0,1)" true (Structure.mem sub "E" [| 0; 1 |]);
  Alcotest.(check int) "dropped E(1,2)" 1 (Tuple.Set.cardinal (Structure.rel sub "E"));
  Alcotest.(check bool) "P on renumbered 3" true (Structure.mem sub "P" [| 2 |]);
  Alcotest.(check bool) "0-ary survives" true (Structure.mem sub "Z" [||])

let test_disjoint_union () =
  let a = mk_struct () in
  let u = Structure.disjoint_union a a in
  Alcotest.(check int) "order doubles" 8 (Structure.order u);
  Alcotest.(check int) "E doubles" 4 (Tuple.Set.cardinal (Structure.rel u "E"));
  Alcotest.(check bool) "shifted tuple" true (Structure.mem u "E" [| 4; 5 |])

let test_expand_reduct () =
  let a = mk_struct () in
  let b = Structure.expand a [ ("Q", 1, [ [| 0 |]; [| 2 |] ]) ] in
  Alcotest.(check bool) "new rel" true (Structure.mem b "Q" [| 2 |]);
  Alcotest.(check bool) "old rel kept" true (Structure.mem b "E" [| 0; 1 |]);
  let c = Structure.reduct b sig_ab in
  Alcotest.(check bool) "reduct drops Q" false (Signature.mem (Structure.signature c) "Q");
  Alcotest.(check bool) "reduct equals original" true (Structure.equal c a)

let test_isomorphic () =
  let p3 = Structure.of_graph (Foc_graph.Gen.path 3) in
  (* path 0-1-2 vs path with middle renamed: 1-0-2 *)
  let q =
    Structure.create Signature.graph ~order:3
      [ ("E", [ [| 1; 0 |]; [| 0; 1 |]; [| 0; 2 |]; [| 2; 0 |] ]) ]
  in
  Alcotest.(check bool) "isomorphic paths" true (Structure.isomorphic p3 q);
  let tri = Structure.of_graph (Foc_graph.Gen.cycle 3) in
  Alcotest.(check bool) "path vs triangle" false (Structure.isomorphic p3 tri)

let test_removal_shapes () =
  let a = mk_struct () in
  let b = Removal_op.apply a ~r:2 ~d:1 in
  Alcotest.(check int) "order shrinks" 3 (Structure.order b);
  (* E(0,1) with d=1 at position 2: goes to E~2 as unary (0) *)
  Alcotest.(check bool) "E~2 holds 0" true
    (Structure.mem b (Removal_op.tilde_name "E" [ 2 ]) [| 0 |]);
  (* E(1,2): position 1 held d, element 2 renames to 1 *)
  Alcotest.(check bool) "E~1 holds renamed 2" true
    (Structure.mem b (Removal_op.tilde_name "E" [ 1 ]) [| 1 |]);
  (* no surviving full-arity E tuples *)
  Alcotest.(check int) "E~ empty" 0
    (Tuple.Set.cardinal (Structure.rel b (Removal_op.tilde_name "E" [])));
  (* P(3) has no d: P~ keeps it, renamed to 2 *)
  Alcotest.(check bool) "P~ keeps 3 as 2" true
    (Structure.mem b (Removal_op.tilde_name "P" []) [| 2 |]);
  (* spheres: dist(1,0)=1 and dist(1,2)=1, element 3 unreachable *)
  Alcotest.(check bool) "S1 holds 0" true
    (Structure.mem b (Removal_op.sphere_name 1) [| 0 |]);
  Alcotest.(check bool) "S1 holds old-2" true
    (Structure.mem b (Removal_op.sphere_name 1) [| 1 |]);
  Alcotest.(check bool) "S2 misses old-3" false
    (Structure.mem b (Removal_op.sphere_name 2) [| 2 |])

let test_removal_rename_roundtrip () =
  for d = 0 to 4 do
    for x = 0 to 4 do
      if x <> d then
        Alcotest.(check int) "rename roundtrip" x
          (Removal_op.unrename ~d (Removal_op.rename ~d x))
    done
  done

let test_strings_roundtrip () =
  let alphabet = [ 'a'; 'b'; 'c' ] in
  let s = "abcabba" in
  let a = Strings.of_string ~alphabet s in
  Alcotest.(check int) "order" (String.length s) (Structure.order a);
  Alcotest.(check string) "roundtrip" s (Strings.to_string ~alphabet a);
  (* the order relation is reflexive-transitive: n(n+1)/2 tuples *)
  Alcotest.(check int) "order tuples" 28
    (Tuple.Set.cardinal (Structure.rel a Strings.le_name))

let test_customer_db () =
  let rng = Random.State.make [| 5 |] in
  let db = Db_gen.customer_order rng ~customers:20 ~orders:50 ~countries:3 ~cities:5 in
  Alcotest.(check int) "20 customers" 20
    (Tuple.Set.cardinal (Structure.rel db.db Db_gen.customer_rel));
  Alcotest.(check int) "50 orders" 50
    (Tuple.Set.cardinal (Structure.rel db.db Db_gen.order_rel));
  Alcotest.(check bool) "berlin marked" true
    (Structure.mem db.db Db_gen.berlin_rel [| db.berlin |]);
  (* order customer-ids reference customers *)
  Tuple.Set.iter
    (fun t -> Alcotest.(check bool) "fk valid" true (List.mem t.(3) db.customer_ids))
    (Structure.rel db.db Db_gen.order_rel)

let test_colored_digraph () =
  let rng = Random.State.make [| 9 |] in
  let g = Foc_graph.Gen.cycle 10 in
  let a = Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:1.0 ~p_blue:0.0 ~p_green:0.5 in
  Alcotest.(check int) "both orientations" 20 (Tuple.Set.cardinal (Structure.rel a "E"));
  Alcotest.(check int) "all red" 10 (Tuple.Set.cardinal (Structure.rel a "R"));
  Alcotest.(check int) "no blue" 0 (Tuple.Set.cardinal (Structure.rel a "B"))

let prop_removal_size =
  QCheck.Test.make ~name:"removal keeps tuple counts" ~count:50
    QCheck.(pair (int_range 2 12) (int_range 0 2))
    (fun (n, r) ->
      let rng = Random.State.make [| n; r; 77 |] in
      let sign = Signature.of_list [ ("E", 2); ("P", 1) ] in
      let a = Db_gen.random_structure rng sign ~order:n ~tuples:(2 * n) in
      let d = Random.State.int rng n in
      let b = Removal_op.apply a ~r ~d in
      (* every original E tuple lands in exactly one E~I bucket *)
      let total =
        List.fold_left
          (fun acc positions ->
            acc
            + Tuple.Set.cardinal
                (Structure.rel b (Removal_op.tilde_name "E" positions)))
          0
          [ []; [ 1 ]; [ 2 ]; [ 1; 2 ] ]
      in
      total = Tuple.Set.cardinal (Structure.rel a "E"))

let () =
  Alcotest.run "foc_data"
    [
      ( "signature",
        [
          Alcotest.test_case "basics" `Quick test_signature;
          Alcotest.test_case "tuples" `Quick test_tuple;
        ] );
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure_basics;
          Alcotest.test_case "gaifman" `Quick test_gaifman;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "expand/reduct" `Quick test_expand_reduct;
          Alcotest.test_case "isomorphic" `Quick test_isomorphic;
        ] );
      ( "removal",
        [
          Alcotest.test_case "shapes" `Quick test_removal_shapes;
          Alcotest.test_case "rename roundtrip" `Quick test_removal_rename_roundtrip;
          QCheck_alcotest.to_alcotest prop_removal_size;
        ] );
      ("strings", [ Alcotest.test_case "roundtrip" `Quick test_strings_roundtrip ]);
      ( "db_gen",
        [
          Alcotest.test_case "customer/order" `Quick test_customer_db;
          Alcotest.test_case "colored digraph" `Quick test_colored_digraph;
        ] );
    ]
