(* Tests for the query planner (EXPLAIN) and the treedepth module with its
   induced Splitter strategy, plus the new generators. *)

open Foc_logic
module G = Foc_graph

let preds = Pred.standard
let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s

(* ---------------- plans ---------------- *)

let test_plan_degree_term () =
  let plan = Foc_nd.Plan.term_plan (parse_t "#(x,y). (E(x,y) & B(y))") in
  Alcotest.(check bool) "fully localized" true plan.strictly_localized;
  Alcotest.(check int) "one kernel" 1 (List.length plan.kernels);
  match plan.kernels with
  | [ ({ route = Foc_nd.Plan.Localized { patterns; _ }; _ } as k) ] ->
      Alcotest.(check bool) "ground" false k.anchored;
      Alcotest.(check int) "width 2" 2 k.width;
      Alcotest.(check int) "2 patterns" 2 patterns
  | _ -> Alcotest.fail "expected one localized kernel"

let test_plan_nested () =
  (* #-depth 2: the inner prime condition is a materialisation *)
  let plan =
    Foc_nd.Plan.formula_plan
      (parse "exists x. prime(#(y). (E(x,y) & B(y)))")
  in
  Alcotest.(check int) "one materialisation" 1 plan.materialisations;
  Alcotest.(check int) "two kernels" 2 (List.length plan.kernels);
  Alcotest.(check bool) "fully localized" true plan.strictly_localized;
  (* the inner kernel is per-element, the outer ground *)
  match plan.kernels with
  | [ inner; outer ] ->
      Alcotest.(check bool) "inner per-element" true inner.anchored;
      Alcotest.(check bool) "outer ground" false outer.anchored
  | _ -> Alcotest.fail "unexpected kernel count"

let test_plan_fallbacks () =
  (* an unguarded quantifier makes the body non-local: fallback with reason *)
  let plan =
    Foc_nd.Plan.term_plan (parse_t "#(y). (exists z. (B(z) | E(x,y)))")
  in
  Alcotest.(check bool) "not fully localized" false plan.strictly_localized;
  (match plan.kernels with
  | [ { route = Foc_nd.Plan.Fallback why; _ } ] ->
      Alcotest.(check bool) "reason mentions guard" true
        (String.length why > 0)
  | _ -> Alcotest.fail "expected one fallback kernel");
  (* width cap *)
  let narrow = { Foc_nd.Engine.default_config with max_width = 1 } in
  let plan2 =
    Foc_nd.Plan.term_plan ~config:narrow (parse_t "#(x,y). E(x,y)")
  in
  Alcotest.(check bool) "width-capped" false plan2.strictly_localized

let test_plan_query () =
  let q =
    Query.make ~head_vars:[ "x" ]
      ~head_terms:[ parse_t "#(y). (E(x,y) & B(y))" ]
      (parse "R(x)")
  in
  let plan = Foc_nd.Plan.query_plan q in
  Alcotest.(check bool) "localized" true plan.strictly_localized;
  Alcotest.(check int) "body + term kernels" 2 (List.length plan.kernels);
  (* the pretty-printer produces something *)
  let printed = Format.asprintf "%a" Foc_nd.Plan.pp plan in
  Alcotest.(check bool) "pp non-empty" true (String.length printed > 40)

let test_plan_matches_engine () =
  (* if the plan says fully localized, the engine must not fall back *)
  let rng = Random.State.make [| 71 |] in
  let a =
    Foc_data.Db_gen.colored_digraph rng
      ~graph:(G.Gen.random_tree rng 50)
      ~orient:`Both ~p_red:0.3 ~p_blue:0.4 ~p_green:0.3
  in
  let terms =
    [
      "#(x,y). (E(x,y) & B(y))";
      "#(x). prime(#(y). E(x,y))";
      "#(y). (B(y) | R(x))" (* scattered but decomposable *);
      "#(y). (exists z. (B(z) | E(x,y)))" (* unguarded z: fallback *);
    ]
  in
  List.iter
    (fun src ->
      let t = parse_t src in
      let plan = Foc_nd.Plan.term_plan t in
      let eng = Foc_nd.Engine.create () in
      (match Var.Set.elements (Ast.free_term t) with
      | [] -> ignore (Foc_nd.Engine.eval_ground eng a t)
      | [ x ] -> ignore (Foc_nd.Engine.eval_unary eng a x t)
      | _ -> ());
      Alcotest.(check bool)
        (src ^ ": plan fallback prediction matches engine")
        plan.strictly_localized
        ((Foc_nd.Engine.stats eng).fallbacks = 0))
    terms

(* ---------------- treedepth ---------------- *)

let test_exact_known () =
  let td g = G.Treedepth.exact g in
  Alcotest.(check int) "single vertex" 1 (td (G.Graph.create 1 []));
  Alcotest.(check int) "edge" 2 (td (G.Gen.path 2));
  (* td(P_n) = ceil(log2 (n+1)) *)
  Alcotest.(check int) "P3" 2 (td (G.Gen.path 3));
  Alcotest.(check int) "P7" 3 (td (G.Gen.path 7));
  Alcotest.(check int) "P8" 4 (td (G.Gen.path 8));
  Alcotest.(check int) "K5" 5 (td (G.Gen.clique 5));
  Alcotest.(check int) "star" 2 (td (G.Gen.star 8));
  Alcotest.(check int) "disconnected = max" 2
    (td (G.Graph.union (G.Gen.path 2) (G.Gen.path 3)))

let test_heuristic_validity () =
  let rng = Random.State.make [| 73 |] in
  List.iter
    (fun g ->
      let f = G.Treedepth.heuristic g in
      Alcotest.(check bool) "elimination forest" true
        (G.Treedepth.is_elimination_forest g f);
      if G.Graph.order g <= 14 then
        Alcotest.(check bool) "bound >= exact" true
          (G.Treedepth.forest_depth f >= G.Treedepth.exact g))
    [
      G.Gen.path 14;
      G.Gen.cycle 12;
      G.Gen.star 13;
      G.Gen.random_tree rng 14;
      G.Gen.random_bounded_degree rng 14 3;
      G.Gen.grid 3 4;
    ]

let test_heuristic_path_logarithmic () =
  let f = G.Treedepth.heuristic (G.Gen.path 1023) in
  (* exact is 10; the centre heuristic is exactly balanced on paths *)
  Alcotest.(check bool) "≈ log depth" true (G.Treedepth.forest_depth f <= 12)

let test_treedepth_splitter_wins () =
  let rng = Random.State.make [| 79 |] in
  let g = G.Gen.random_tree rng 300 in
  let bound = G.Treedepth.upper_bound g in
  let rounds =
    G.Splitter.rounds_to_win g ~r:2 ~max_rounds:(bound + 1)
      ~connector:(G.Splitter.connector_greedy ~r:2 rng)
      ~splitter:(G.Treedepth.splitter g)
  in
  match rounds with
  | Some k ->
      Alcotest.(check bool)
        (Printf.sprintf "wins within forest depth (%d <= %d)" k bound)
        true (k <= bound)
  | None -> Alcotest.fail "treedepth splitter should win"

(* ---------------- new generators ---------------- *)

let test_torus () =
  let g = G.Gen.torus 5 6 in
  Alcotest.(check int) "order" 30 (G.Graph.order g);
  Alcotest.(check int) "4-regular edges" 60 (G.Graph.edge_count g);
  for v = 0 to 29 do
    Alcotest.(check int) "degree 4" 4 (G.Graph.degree g v)
  done;
  (* vertex-transitive: one ball type *)
  let a = Foc_data.Structure.of_graph g in
  Alcotest.(check int) "single type" 1 (Foc_bd.Hanf.type_count a ~r:1)

let test_power_law () =
  let rng = Random.State.make [| 83 |] in
  let g = G.Gen.power_law rng 300 2 in
  Alcotest.(check int) "order" 300 (G.Graph.order g);
  Alcotest.(check bool) "connected" true (G.Components.is_connected g);
  Alcotest.(check bool) "sparse" true (G.Graph.edge_count g <= 2 * 300);
  Alcotest.(check bool) "has a hub" true (G.Graph.max_degree g >= 8)

let () =
  Alcotest.run "plan & treedepth"
    [
      ( "plan",
        [
          Alcotest.test_case "degree term" `Quick test_plan_degree_term;
          Alcotest.test_case "nested counting" `Quick test_plan_nested;
          Alcotest.test_case "fallback reporting" `Quick test_plan_fallbacks;
          Alcotest.test_case "query plan" `Quick test_plan_query;
          Alcotest.test_case "plan matches engine" `Quick test_plan_matches_engine;
        ] );
      ( "treedepth",
        [
          Alcotest.test_case "exact knowns" `Quick test_exact_known;
          Alcotest.test_case "heuristic validity" `Quick test_heuristic_validity;
          Alcotest.test_case "path is logarithmic" `Quick test_heuristic_path_logarithmic;
          Alcotest.test_case "splitter wins" `Quick test_treedepth_splitter_wins;
        ] );
      ( "generators",
        [
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "power law" `Quick test_power_law;
        ] );
    ]
