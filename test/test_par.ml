(* Tests for the parallel evaluation layer: the Foc_par combinators
   themselves, and the engine invariant parallel(jobs=4) ≡ sequential
   (jobs=1) over random structures × random FOC1 queries for the Direct,
   Cover and Hanf back-ends. *)

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let engine backend jobs =
  Foc.Engine.create
    ~config:{ Foc.Engine.default_config with backend; jobs }
    ()

(* ---------------- Foc_par combinators ---------------- *)

let test_parallel_for () =
  List.iter
    (fun (jobs, n) ->
      let hits = Array.make (max n 1) 0 in
      Foc.Par.parallel_for ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
      for i = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d n=%d index %d hit once" jobs n i)
          1 hits.(i)
      done)
    [ (1, 100); (2, 100); (4, 1); (4, 7); (4, 1000); (8, 64); (4, 0) ]

let test_tabulate () =
  List.iter
    (fun (jobs, n) ->
      Alcotest.(check (array int))
        (Printf.sprintf "tabulate jobs=%d n=%d" jobs n)
        (Array.init n (fun i -> (i * i) mod 97))
        (Foc.Par.tabulate ~jobs n (fun i -> (i * i) mod 97)))
    [ (1, 50); (3, 50); (4, 1); (4, 1023); (16, 33) ]

let test_map_reduce_sum () =
  List.iter
    (fun (jobs, chunks, n) ->
      Alcotest.(check int)
        (Printf.sprintf "sum jobs=%d chunks=%d n=%d" jobs chunks n)
        (n * (n - 1) / 2)
        (Foc.Par.map_reduce ~jobs ~chunks ~n ~map:Fun.id ~reduce:( + ) 0))
    [ (1, 1, 1000); (4, 16, 1000); (4, 3, 1001); (5, 40, 17) ]

let test_map_reduce_order () =
  (* associative but non-commutative reduce: the result only matches the
     sequential fold when partials really are combined in chunk order *)
  let expected = List.init 200 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "append order jobs=%d" jobs)
        expected
        (Foc.Par.map_reduce ~jobs ~n:200
           ~map:(fun i -> [ i ])
           ~reduce:( @ ) []))
    [ 1; 2; 4; 7 ]

let test_tabulate_ctx () =
  let made = Atomic.make 0 in
  let out, ctxs =
    Foc.Par.tabulate_ctx ~jobs:4
      ~make_ctx:(fun () ->
        ignore (Atomic.fetch_and_add made 1);
        ref 0)
      500
      (fun c i ->
        incr c;
        i * 2)
  in
  Alcotest.(check (array int))
    "values" (Array.init 500 (fun i -> i * 2)) out;
  Alcotest.(check int) "every context returned" (Atomic.get made)
    (List.length ctxs);
  Alcotest.(check int) "per-context counts add up to n" 500
    (List.fold_left (fun acc c -> acc + !c) 0 ctxs)

let test_exception_propagates () =
  Alcotest.check_raises "exception re-raised at join" Exit (fun () ->
      Foc.Par.parallel_for ~jobs:4 100 (fun i ->
          if i = 63 then raise Exit));
  (* and the pool still works afterwards *)
  Alcotest.(check int) "pool survives" 4950
    (Foc.Par.map_reduce ~jobs:4 ~n:100 ~map:Fun.id ~reduce:( + ) 0)

exception Probe of int

(* the exception — payload included — must come back identical at every
   jobs setting (sequential path, submitter slot, worker domains), and
   each failed batch must leave the pool reusable for the next one *)
let test_exception_every_jobs () =
  List.iter
    (fun jobs ->
      (match
         Foc.Par.tabulate ~jobs 64 (fun i ->
             if i = 37 then raise (Probe (1000 + i)) else i)
       with
      | _ -> Alcotest.failf "jobs=%d: no exception raised" jobs
      | exception Probe p ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d payload intact" jobs)
            1037 p);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d pool reusable after failure" jobs)
        2016
        (Foc.Par.map_reduce ~jobs ~n:64 ~map:Fun.id ~reduce:( + ) 0))
    [ 1; 2; 4; 8 ]

(* regression: the join point must re-raise with the backtrace captured on
   the failing executor. Before the fix it did a plain [raise], so the
   trace pointed at Foc_par.run_batch instead of the task's raise site. *)
let test_exception_backtrace () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace prev)
    (fun () ->
      match
        Foc.Par.parallel_for ~jobs:4 256 (fun i ->
            if i mod 64 = 63 then failwith "kaboom")
      with
      | () -> Alcotest.fail "no exception raised"
      | exception Failure _ ->
          let bt =
            Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
          in
          (* the preserved trace starts at Stdlib.failwith; a trace
             starting inside Foc_par means the capture was lost. An empty
             trace (no debug info) is accepted. *)
          let mentions needle =
            let ln = String.length needle and lb = String.length bt in
            let rec go i =
              i + ln <= lb && (String.sub bt i ln = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            "backtrace names the raise site, not the join" true
            (bt = "" || mentions "failwith" || mentions "stdlib.ml"))

let test_nested_degrades () =
  (* a parallel call from inside a worker must degrade to sequential
     instead of deadlocking *)
  let out =
    Foc.Par.tabulate ~jobs:4 64 (fun i ->
        Foc.Par.map_reduce ~jobs:4 ~n:(i + 1) ~map:Fun.id ~reduce:( + ) 0)
  in
  Alcotest.(check (array int))
    "nested results"
    (Array.init 64 (fun i -> i * (i + 1) / 2))
    out

(* ---------------- cross-engine property ---------------- *)

(* random r-local bodies over the coloured-digraph signature *)
let body_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "E(x,y)"; "E(y,x)"; "B(y)"; "R(y)"; "G(y)"; "R(x)" ] in
  let literal = map2 (fun neg a -> if neg then "!" ^ a else a) bool atom in
  let connective = oneofl [ " & "; " | " ] in
  map3
    (fun l1 op l2 -> "(" ^ l1 ^ op ^ l2 ^ ")")
    literal connective literal

let arb_case =
  QCheck.make
    ~print:(fun (n, seed, body) -> Printf.sprintf "n=%d seed=%d %s" n seed body)
    QCheck.Gen.(triple (int_range 8 40) (int_range 0 10000) body_gen)

let prop_engines backend name =
  QCheck.Test.make ~name ~count:25 arb_case (fun (n, seed, body) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc.Gen.random_bounded_degree rng n 3) in
      let unary = Foc.parse_term (Printf.sprintf "#(y). %s" body) in
      let ground = Foc.parse_term (Printf.sprintf "#(x,y). %s" body) in
      let seq = engine backend 1 and par = engine backend 4 in
      Foc.Engine.eval_unary seq a "x" unary
      = Foc.Engine.eval_unary par a "x" unary
      && Foc.Engine.eval_ground seq a ground
         = Foc.Engine.eval_ground par a ground)

let () =
  Alcotest.run "parallel layer"
    [
      ( "foc_par combinators",
        [
          Alcotest.test_case "parallel_for covers range" `Quick
            test_parallel_for;
          Alcotest.test_case "tabulate = Array.init" `Quick test_tabulate;
          Alcotest.test_case "map_reduce sums" `Quick test_map_reduce_sum;
          Alcotest.test_case "deterministic reduce order" `Quick
            test_map_reduce_order;
          Alcotest.test_case "per-executor contexts" `Quick test_tabulate_ctx;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "exceptions at every jobs setting" `Quick
            test_exception_every_jobs;
          Alcotest.test_case "backtrace survives the join" `Quick
            test_exception_backtrace;
          Alcotest.test_case "nested calls degrade" `Quick
            test_nested_degrades;
        ] );
      ( "parallel = sequential",
        [
          QCheck_alcotest.to_alcotest
            (prop_engines Foc.Engine.Direct "direct: jobs=4 = jobs=1");
          QCheck_alcotest.to_alcotest
            (prop_engines Foc.Engine.Cover "cover: jobs=4 = jobs=1");
          QCheck_alcotest.to_alcotest
            (prop_engines Foc.Engine.Hanf "hanf: jobs=4 = jobs=1");
        ] );
    ]
