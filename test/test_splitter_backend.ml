(* The splitter-game back-end (Section 8.2, steps 5a-e): agreement with the
   direct sweep across classes, recursion-depth behaviour, and the removal
   counter. *)

open Foc_logic
open Foc_nd

let preds = Pred.standard
let parse s = Parser.formula preds s
let parse_t s = Parser.term preds s

let coloured seed g =
  let rng = Random.State.make [| seed |] in
  Foc_data.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
    ~p_blue:0.4 ~p_green:0.3

let splitter_cfg ~max_rounds ~small =
  { Engine.default_config with backend = Engine.Splitter { max_rounds; small } }

let decompose vars src =
  let body = parse src in
  let r =
    match Foc_local.Locality.formula_radius body with
    | Foc_local.Locality.Local r -> r
    | Foc_local.Locality.Nonlocal w -> Alcotest.fail w
  in
  match Foc_local.Decompose.unary_count ~r ~vars body with
  | Some cl -> cl
  | None -> Alcotest.fail "decomposition failed"

let check_agree name a cl ~max_rounds ~small =
  let removed = ref 0 in
  let got =
    Splitter_backend.eval_unary
      ~stats_removals:(fun k -> removed := !removed + k)
      preds a ~max_rounds ~small cl
  in
  let ctx =
    let rec radius = function
      | Foc_local.Clterm.Const _ -> 0
      | Foc_local.Clterm.Ground b | Foc_local.Clterm.Unary b ->
          b.Foc_local.Clterm.radius
      | Foc_local.Clterm.Add (s, t) | Foc_local.Clterm.Mul (s, t) ->
          max (radius s) (radius t)
    in
    Foc_local.Pattern_count.make_ctx preds a ~r:(radius cl)
  in
  let expected = Foc_local.Clterm.eval_unary ctx cl in
  Alcotest.(check (array int)) name expected got;
  !removed

let test_agree_star () =
  (* a star forces the hub removal immediately: the textbook case *)
  let a = coloured 1 (Foc_graph.Gen.star 40) in
  let cl = decompose [ "x"; "y" ] "E(x,y) & B(y)" in
  let removed = check_agree "star" a cl ~max_rounds:3 ~small:8 in
  Alcotest.(check bool) "performed removals" true (removed > 0)

let test_agree_tree () =
  let rng = Random.State.make [| 2 |] in
  let a = coloured 2 (Foc_graph.Gen.random_tree rng 150) in
  let cl = decompose [ "x"; "y" ] "E(x,y) & B(y)" in
  ignore (check_agree "tree" a cl ~max_rounds:3 ~small:10)

let test_agree_grid_scattered () =
  let a = coloured 3 (Foc_graph.Gen.grid 7 8) in
  (* a scattered kernel: exercises ground legs inside the polynomial *)
  let cl = decompose [ "x"; "y" ] "B(y) & R(x)" in
  ignore (check_agree "grid scattered" a cl ~max_rounds:2 ~small:10)

let test_rounds_zero_is_direct () =
  let rng = Random.State.make [| 4 |] in
  let a = coloured 4 (Foc_graph.Gen.random_tree rng 60) in
  let cl = decompose [ "x"; "y" ] "E(x,y) & B(y)" in
  let removed = check_agree "rounds=0" a cl ~max_rounds:0 ~small:4 in
  Alcotest.(check int) "no removals at depth 0" 0 removed

let test_engine_integration () =
  let rng = Random.State.make [| 5 |] in
  let a = coloured 5 (Foc_graph.Gen.random_bounded_degree rng 80 3) in
  let eng = Engine.create ~config:(splitter_cfg ~max_rounds:3 ~small:12) () in
  let direct = Engine.create () in
  let terms =
    [
      "#(x). (R(x) & (exists y. E(x,y) & B(y)))";
      "#(x,y). (E(x,y) | (R(x) & B(y)))";
    ]
  in
  List.iter
    (fun src ->
      let t = parse_t src in
      Alcotest.(check int) src
        (Engine.eval_ground direct a t)
        (Engine.eval_ground eng a t))
    terms;
  Alcotest.(check bool) "removal stats recorded" true
    ((Engine.stats eng).removals >= 0)

let prop_splitter_agrees =
  QCheck.Test.make ~name:"splitter backend = direct on random graphs"
    ~count:20
    QCheck.(pair (int_range 10 70) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let a = coloured seed (Foc_graph.Gen.random_bounded_degree rng n 3) in
      let cl = decompose [ "x"; "y" ] "E(x,y) & B(y)" in
      let got =
        Splitter_backend.eval_unary
          ~stats_removals:(fun _ -> ())
          preds a ~max_rounds:2 ~small:6 cl
      in
      let ctx = Foc_local.Pattern_count.make_ctx preds a ~r:1 in
      got = Foc_local.Clterm.eval_unary ctx cl)

let () =
  Alcotest.run "foc_nd splitter backend"
    [
      ( "agreement",
        [
          Alcotest.test_case "star (hub removal)" `Quick test_agree_star;
          Alcotest.test_case "tree" `Quick test_agree_tree;
          Alcotest.test_case "grid scattered" `Quick test_agree_grid_scattered;
          Alcotest.test_case "rounds=0 is direct" `Quick test_rounds_zero_is_direct;
          Alcotest.test_case "engine integration" `Quick test_engine_integration;
          QCheck_alcotest.to_alcotest prop_splitter_agrees;
        ] );
    ]
