(* End-to-end checks of the Section 4 hardness reductions:
   G ⊨ ϕ  ⟺  T_G ⊨ ϕ̂  ⟺  S_G ⊨ ϕ̂_str, verified with the baseline
   engines on small graphs. *)

open Foc_logic
open Foc_hardness

let preds = Pred.hardness
let parse s = Parser.formula Pred.standard s

(* FO test sentences over the graph signature *)
let sentences =
  [
    ("some edge", "exists x y. E(x,y)");
    ("isolated vertex", "exists x. forall y. !E(x,y)");
    ("triangle", "exists x y z. E(x,y) & E(y,z) & E(z,x)");
    ("no triangle", "!(exists x y z. E(x,y) & E(y,z) & E(z,x))");
    ("dominating vertex", "exists x. forall y. x = y | E(x,y)");
    ("everyone has a neighbour", "forall x. exists y. E(x,y)");
  ]

let graphs () =
  let rng = Random.State.make [| 103 |] in
  [
    ("path4", Foc_graph.Gen.path 4);
    ("cycle3", Foc_graph.Gen.cycle 3);
    ("clique4", Foc_graph.Gen.clique 4);
    ("star4", Foc_graph.Gen.star 4);
    ("empty3", Foc_graph.Graph.create 3 []);
    ("random5", Foc_graph.Gen.erdos_renyi rng 5 0.4);
  ]

let holds_on_graph g phi =
  Foc_eval.Naive.sentence Pred.standard (Foc_data.Structure.of_graph g) phi

let test_tree_gadget_shapes () =
  let g = Foc_graph.Gen.path 3 in
  let t = Tree_encoding.encode_graph g in
  let a_of = Tree_encoding.a_vertices g in
  (* T_G is a tree: connected, |E| = |V| - 1 *)
  let gg = Foc_data.Structure.gaifman t in
  Alcotest.(check bool) "connected" true (Foc_graph.Components.is_connected gg);
  Alcotest.(check int) "tree edge count"
    (Foc_graph.Graph.order gg - 1)
    (Foc_graph.Graph.edge_count gg);
  (* the classifier formulas pick out the right vertices *)
  List.iteri
    (fun v a ->
      let env = Foc_eval.Naive.env_of_list [ ("x", a) ] in
      Alcotest.(check bool)
        (Printf.sprintf "ψ_a recognises a(%d)" v)
        true
        (Foc_eval.Relalg.holds Pred.standard t [ ("x", a) ]
           (Tree_encoding.psi_a "x"));
      ignore env)
    (Array.to_list a_of);
  (* count of ψ_a-vertices is exactly |V(G)| *)
  let count_a =
    Foc_eval.Relalg.count Pred.standard t [ "x" ] (Tree_encoding.psi_a "x")
  in
  Alcotest.(check int) "exactly n a-vertices" 3 count_a

let test_tree_edge_simulation () =
  let g = Foc_graph.Gen.path 3 in
  let t = Tree_encoding.encode_graph g in
  let a_of = Tree_encoding.a_vertices g in
  for u = 0 to 2 do
    for v = 0 to 2 do
      if u <> v then
        Alcotest.(check bool)
          (Printf.sprintf "edge %d-%d simulated" u v)
          (Foc_graph.Graph.mem_edge g u v)
          (Foc_eval.Relalg.holds Pred.standard t
             [ ("x", a_of.(u)); ("y", a_of.(v)) ]
             (Tree_encoding.psi_edge "x" "y"))
    done
  done

let test_tree_reduction_correct () =
  List.iter
    (fun (gname, g) ->
      let t = Tree_encoding.encode_graph g in
      List.iter
        (fun (sname, s) ->
          let phi = parse s in
          let phi_hat = Tree_encoding.encode_sentence phi in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" gname sname)
            (holds_on_graph g phi)
            (Foc_eval.Relalg.holds Pred.standard t [] phi_hat))
        sentences)
    (graphs ())

let test_tree_uses_hardness_preds_only () =
  (* ϕ̂ only needs P= — the collection of Theorem 4.1 *)
  let phi_hat = Tree_encoding.encode_sentence (parse "exists x y. E(x,y)") in
  let sign = Foc_data.Signature.graph in
  match Fragment.well_formed sign preds phi_hat with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_tree_not_foc1 () =
  (* the edge simulation is deliberately outside FOC1 *)
  Alcotest.(check bool) "ψ_E not FOC1" false
    (Fragment.is_foc1 (Tree_encoding.psi_edge "x" "y"))

let test_string_shape () =
  let g = Foc_graph.Gen.path 3 in
  (* vertex 0 (paper 1): neighbours {1}; vertex 1: {0,2}; vertex 2: {1} *)
  Alcotest.(check string) "string layout" "acbccaccbcbcccacccbcc"
    (String_encoding.string_of_graph g);
  let s = String_encoding.encode_graph g in
  Alcotest.(check int) "order = length" 21 (Foc_data.Structure.order s);
  let a_pos = String_encoding.a_positions g in
  Alcotest.(check (array int)) "a positions" [| 0; 5; 14 |] a_pos

let test_string_edge_simulation () =
  let g = Foc_graph.Gen.path 3 in
  let s = String_encoding.encode_graph g in
  let a_pos = String_encoding.a_positions g in
  for u = 0 to 2 do
    for v = 0 to 2 do
      if u <> v then
        Alcotest.(check bool)
          (Printf.sprintf "string edge %d-%d" u v)
          (Foc_graph.Graph.mem_edge g u v)
          (Foc_eval.Relalg.holds Pred.standard s
             [ ("x", a_pos.(u)); ("y", a_pos.(v)) ]
             (String_encoding.psi_edge "x" "y"))
    done
  done

let small_sentences =
  [
    ("some edge", "exists x y. E(x,y)");
    ("isolated vertex", "exists x. forall y. !E(x,y)");
    ("everyone has a neighbour", "forall x. exists y. E(x,y)");
  ]

let test_string_reduction_correct () =
  (* strings blow up quadratically: use the smaller graphs *)
  let small =
    List.filter
      (fun (_, g) -> Foc_graph.Graph.order g <= 4)
      (graphs ())
  in
  List.iter
    (fun (gname, g) ->
      let s = String_encoding.encode_graph g in
      List.iter
        (fun (sname, src) ->
          let phi = parse src in
          let phi_hat = String_encoding.encode_sentence phi in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" gname sname)
            (holds_on_graph g phi)
            (Foc_eval.Relalg.holds Pred.standard s [] phi_hat))
        small_sentences)
    small

let prop_tree_reduction_random =
  QCheck.Test.make ~name:"tree reduction on random graphs" ~count:20
    QCheck.(pair (int_range 2 5) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Random.State.make [| n; seed |] in
      let g = Foc_graph.Gen.erdos_renyi rng n 0.5 in
      let t = Tree_encoding.encode_graph g in
      List.for_all
        (fun (_, s) ->
          let phi = parse s in
          let phi_hat = Tree_encoding.encode_sentence phi in
          holds_on_graph g phi
          = Foc_eval.Relalg.holds Pred.standard t [] phi_hat)
        [ List.nth sentences 0; List.nth sentences 2; List.nth sentences 5 ])

let () =
  Alcotest.run "foc_hardness"
    [
      ( "tree (Thm 4.1)",
        [
          Alcotest.test_case "gadget shapes" `Quick test_tree_gadget_shapes;
          Alcotest.test_case "edge simulation" `Quick test_tree_edge_simulation;
          Alcotest.test_case "reduction correct" `Quick test_tree_reduction_correct;
          Alcotest.test_case "uses only P=" `Quick test_tree_uses_hardness_preds_only;
          Alcotest.test_case "outside FOC1" `Quick test_tree_not_foc1;
          QCheck_alcotest.to_alcotest prop_tree_reduction_random;
        ] );
      ( "string (Thm 4.3)",
        [
          Alcotest.test_case "layout" `Quick test_string_shape;
          Alcotest.test_case "edge simulation" `Quick test_string_edge_simulation;
          Alcotest.test_case "reduction correct" `Quick test_string_reduction_correct;
        ] );
    ]
