#!/bin/sh
# CI gate: build, run the test suite, and smoke the compact-ball-engine
# benchmark (E11) so the ball-cache counters and eviction path stay
# exercised on every change, plus the observability pipeline (E12 and a
# traced CLI run whose trace file must be parseable Chrome JSON).
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune exec bench/main.exe -- --only E11 --smoke
dune exec bench/main.exe -- --only E12 --smoke
# E13 exits non-zero if the planned and unplanned relational engines
# disagree or the planner takes a full n^k complement on conjunctive
# negation — the agreement gate for the columnar kernel + planner.
dune exec bench/main.exe -- --only E13 --smoke
dune exec bin/foc_cli.exe -- gen -n 300 --class random-tree --colours \
  -o /tmp/ci_tree.foc
dune exec bin/foc_cli.exe -- count -s /tmp/ci_tree.foc \
  "#(x,y). (R(x) & E(x,y))" -e cover --jobs 2 \
  --trace /tmp/ci_trace.json --stats --metrics
dune exec bin/foc_cli.exe -- trace-check /tmp/ci_trace.json
