#!/bin/sh
# CI gate: build, run the test suite, and smoke the compact-ball-engine
# benchmark (E11) so the ball-cache counters and eviction path stay
# exercised on every change, plus the observability pipeline (E12 and a
# traced CLI run whose trace file must be parseable Chrome JSON).
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune exec bench/main.exe -- --only E11 --smoke
dune exec bench/main.exe -- --only E12 --smoke
# E13 exits non-zero if the planned and unplanned relational engines
# disagree or the planner takes a full n^k complement on conjunctive
# negation — the agreement gate for the columnar kernel + planner.
dune exec bench/main.exe -- --only E13 --smoke
# E14 exits non-zero if a warm session or a batch (jobs 1 and 4) ever
# disagrees with a fresh engine, or if the session hit counters stay
# zero — the agreement gate for the session layer.
dune exec bench/main.exe -- --only E14 --smoke
# E15 drives a real foc-serve daemon with 8 concurrent clients under
# mixed read/write and exits non-zero if any answer disagrees with a
# fresh sequential engine at the version it was served on.
dune exec bench/main.exe -- --only E15 --smoke
# E16 exits non-zero if histograms fail to flip the join order on
# hub-skewed data, the adaptive feedback loop never re-plans, any count
# deviates from the unplanned baseline / Naive, or incrementally
# maintained statistics drift from recollection — the agreement gate
# for the statistics layer and the adaptive planner.
dune exec bench/main.exe -- --only E16 --smoke
# E17 runs the E15 load twice — plain and with the full observability
# stack (per-request timing, slow-query log, bounded-ring tracing) — and
# exits non-zero if any answer differs between the runs or from a fresh
# engine, a timing breakdown exceeds its own total, the slow log or
# trace export fails to fire, or the overhead passes 2x.
dune exec bench/main.exe -- --only E17 --smoke
# E18 exits non-zero if a session restored from a snapshot (+WAL replay)
# ever disagrees with a fresh engine on the updated structure, or if the
# snapshot cold start fails to beat the full artifact rebuild by >=5x —
# the agreement and performance gate for the persistent store.
dune exec bench/main.exe -- --only E18 --smoke
# E19 exits non-zero if a drained enumeration cursor is not bit-identical
# (content and order) to the materialised Relalg answers, or if streaming
# fails to beat materialisation by >=5x on time-to-first-row for the
# output-heavy star workload — the agreement and performance gate for
# constant-delay enumeration.
dune exec bench/main.exe -- --only E19 --smoke
dune exec bin/foc_cli.exe -- gen -n 300 --class random-tree --colours \
  -o /tmp/ci_tree.foc
dune exec bin/foc_cli.exe -- count -s /tmp/ci_tree.foc \
  "#(x,y). (R(x) & E(x,y))" -e cover --jobs 2 \
  --trace /tmp/ci_trace.json --stats --metrics
dune exec bin/foc_cli.exe -- trace-check /tmp/ci_trace.json
# CLI batch round-trip: session answers must match per-sentence checks
printf 'exists x. (#(y). E(x,y)) >= 1\n#(x,y). (E(x,y) & R(x)) >= 5\n' \
  > /tmp/ci_batch.txt
dune exec bin/foc_cli.exe -- batch -s /tmp/ci_tree.foc --repeat 2 --stats \
  /tmp/ci_batch.txt | tee /tmp/ci_batch_out.txt
a=$(dune exec bin/foc_cli.exe -- check -s /tmp/ci_tree.foc \
  "exists x. (#(y). E(x,y)) >= 1" | head -1)
b=$(dune exec bin/foc_cli.exe -- check -s /tmp/ci_tree.foc \
  "#(x,y). (E(x,y) & R(x)) >= 5" | head -1)
batch_got=$(grep -E '^(true|false)$' /tmp/ci_batch_out.txt | tr '\n' ' ')
[ "$batch_got" = "$a $b " ] || {
  echo "ci: batch round-trip mismatch: got '$batch_got' want '$a $b'"
  exit 1
}
grep -q 'session.compiled_hits=2' /tmp/ci_batch_out.txt || {
  echo "ci: warm batch reported no compiled hits"
  exit 1
}
# serve/call round-trip: daemon on a unix socket, queried over the wire.
# The binary is built above; run it directly so the daemon is a plain
# background process we can wait on.
FOC=_build/default/bin/foc_cli.exe
SOCK=/tmp/ci_serve.sock
SLOWLOG=/tmp/ci_slow.log
rm -f "$SOCK" "$SLOWLOG"
# --slow-ms 0.000001 forces every request over the slow threshold, so the
# round-trip below must leave slow-query lines behind
"$FOC" serve -s /tmp/ci_tree.foc --socket "$SOCK" \
  --slow-ms 0.000001 --slow-log "$SLOWLOG" \
  > /tmp/ci_serve_daemon.log 2>&1 &
SERVE_PID=$!
# a failed gate below must not leave the daemon running
trap '[ -z "$SERVE_PID" ] || kill "$SERVE_PID" 2>/dev/null || true' EXIT
# poll until the daemon answers a ping (or give up after ~5s)
i=0
until "$FOC" call --socket "$SOCK" --timeout 5 '{"op":"ping"}' \
  >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 50 ] || { echo "ci: serve daemon never came up"; exit 1; }
  sleep 0.1
done
"$FOC" call --socket "$SOCK" --timeout 10 \
  '{"op":"check","query":"exists x. (#(y). E(x,y)) >= 1"}' \
  | tee /tmp/ci_serve_out.txt
served=$(grep -o '"result":[a-z]*' /tmp/ci_serve_out.txt | cut -d: -f2)
[ "$served" = "$a" ] || {
  echo "ci: served answer '$served' disagrees with direct check '$a'"
  exit 1
}
# a timing-enabled check must answer with a per-phase breakdown
"$FOC" call --socket "$SOCK" --timeout 10 \
  '{"op":"check","query":"exists x. (#(y). E(x,y)) >= 1","timing":true}' \
  | grep -q '"timing":{"queue_ns":' || {
  echo "ci: timing-enabled check returned no breakdown"
  exit 1
}
# remote explain must tell the planner's story (width 5 exceeds the
# engine's max decomposition width, forcing the baseline join planner)
"$FOC" explain --socket "$SOCK" --timeout 10 \
  '#(v,w,x,y,z). (E(v,w) & E(w,x) & E(x,y) & E(y,z)) >= 1' \
  | tee /tmp/ci_explain_out.txt
grep -q 'join order' /tmp/ci_explain_out.txt || {
  echo "ci: remote explain reported no join order"
  exit 1
}
# the metrics exposition must carry the per-op latency histograms
"$FOC" metrics --socket "$SOCK" --timeout 10 > /tmp/ci_metrics_out.txt
grep -q '# TYPE foc_req_check_ns histogram' /tmp/ci_metrics_out.txt || {
  echo "ci: metrics page missing request histograms"
  exit 1
}
# one top snapshot over the wire keeps the stats op parsing honest
"$FOC" top --socket "$SOCK" --timeout 10 --interval 0.1 --count 1 \
  | grep -q 'read latency' || { echo "ci: foc top produced no view"; exit 1; }
# streaming round-trip: foc query --page drives a cursor over the wire in
# multiple chunks (7 rows / page 3 = 3 fetches) and must report exactly
# the limit, streamed
"$FOC" query --socket "$SOCK" --timeout 10 --head x --head y \
  --body "E(x,y)" --limit 7 --page 3 > /tmp/ci_stream_out.txt
grep -q '^# 7 rows, .*(streamed, producer=' /tmp/ci_stream_out.txt || {
  echo "ci: remote streamed query did not report 7 streamed rows"
  exit 1
}
[ "$(grep -c '|' /tmp/ci_stream_out.txt)" = 7 ] || {
  echo "ci: remote streamed query printed the wrong number of rows"
  exit 1
}
# kill a client mid-stream: open a cursor (chunk 2 leaves it open with
# more:true) and exit without close_cursor — the server must reap it on
# disconnect, so stats settles back to zero open cursors
"$FOC" call --socket "$SOCK" --timeout 10 \
  '{"op":"query","head":["x","y"],"body":"E(x,y)","chunk":2}' \
  | grep -q '"more":true' || {
  echo "ci: streaming query op opened no cursor"
  exit 1
}
sleep 0.3
"$FOC" call --socket "$SOCK" --timeout 10 '{"op":"stats"}' \
  | grep -q '"cursors":0' || {
  echo "ci: abandoned cursor never reaped after client disconnect"
  exit 1
}
"$FOC" call --socket "$SOCK" --timeout 10 \
  '{"op":"insert","rel":"E","tuple":[0,1]}' \
  '{"op":"stats"}' '{"op":"shutdown"}' >/dev/null
wait "$SERVE_PID" || { echo "ci: serve daemon exited non-zero"; exit 1; }
SERVE_PID=""
# every request ran over the forced threshold: the slow log must exist
# and hold properly shaped logfmt lines
grep -q '^msg=slow_query .*total_ms=' "$SLOWLOG" || {
  echo "ci: slow-query log never fired"
  exit 1
}
# persistent-store round trip: serve with --store, apply writes, kill -9
# (no drain, so recovery runs from the startup checkpoint + WAL), restart
# from the store and verify the version and answers survived.
STOREDIR=/tmp/ci_store
Q='exists x. (#(y). E(x,y)) >= 3'
rm -rf "$STOREDIR"
"$FOC" serve -s /tmp/ci_tree.foc --socket "$SOCK" --store "$STOREDIR" \
  --log-level info > /tmp/ci_store_daemon1.log 2>&1 &
SERVE_PID=$!
i=0
until "$FOC" call --socket "$SOCK" --timeout 5 '{"op":"ping"}' \
  >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 50 ] || { echo "ci: store daemon never came up"; exit 1; }
  sleep 0.1
done
"$FOC" call --socket "$SOCK" --timeout 10 \
  '{"op":"insert","rel":"E","tuple":[0,7]}' \
  '{"op":"insert","rel":"E","tuple":[0,9]}' \
  "{\"op\":\"check\",\"query\":\"$Q\"}" > /tmp/ci_store_live.txt
live=$(grep -o '"result":[a-z]*' /tmp/ci_store_live.txt | cut -d: -f2)
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$SOCK"
"$FOC" serve -s /tmp/ci_tree.foc --socket "$SOCK" --store "$STOREDIR" \
  --log-level info > /tmp/ci_store_daemon2.log 2>&1 &
SERVE_PID=$!
i=0
until "$FOC" call --socket "$SOCK" --timeout 5 '{"op":"ping"}' \
  >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 50 ] || { echo "ci: restarted store daemon never came up"; exit 1; }
  sleep 0.1
done
"$FOC" call --socket "$SOCK" --timeout 10 '{"op":"stats"}' \
  "{\"op\":\"check\",\"query\":\"$Q\"}" > /tmp/ci_store_restart.txt
grep -q '"version":2' /tmp/ci_store_restart.txt || {
  echo "ci: restarted daemon lost the pre-kill writes"
  exit 1
}
grep -Eq '"source":"(snapshot|snapshot\+wal n=[0-9]+)"' \
  /tmp/ci_store_restart.txt || {
  echo "ci: restarted daemon did not start from the store"
  exit 1
}
restarted=$(grep -o '"result":[a-z]*' /tmp/ci_store_restart.txt | cut -d: -f2)
[ "$restarted" = "$live" ] || {
  echo "ci: answer changed across kill -9 + store restart:" \
    "'$restarted' vs '$live'"
  exit 1
}
"$FOC" call --socket "$SOCK" --timeout 10 '{"op":"shutdown"}' >/dev/null
wait "$SERVE_PID" || { echo "ci: store daemon exited non-zero"; exit 1; }
SERVE_PID=""
# offline verify-load: answers from the restored session must be
# bit-identical to a fresh engine (foc snapshot load exits 5 otherwise)
"$FOC" snapshot info "$STOREDIR" | grep -q 'crc ok' || {
  echo "ci: snapshot info reported no valid sections"
  exit 1
}
"$FOC" snapshot load --query "$Q" "$STOREDIR" >/dev/null || {
  echo "ci: offline snapshot verify-load failed"
  exit 1
}
