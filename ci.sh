#!/bin/sh
# CI gate: build, run the test suite, and smoke the compact-ball-engine
# benchmark (E11) so the ball-cache counters and eviction path stay
# exercised on every change.
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune exec bench/main.exe -- --only E11 --smoke
