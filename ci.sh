#!/bin/sh
# CI gate: build, run the test suite, and smoke the compact-ball-engine
# benchmark (E11) so the ball-cache counters and eviction path stay
# exercised on every change, plus the observability pipeline (E12 and a
# traced CLI run whose trace file must be parseable Chrome JSON).
set -e
cd "$(dirname "$0")"
dune build
dune runtest
dune exec bench/main.exe -- --only E11 --smoke
dune exec bench/main.exe -- --only E12 --smoke
# E13 exits non-zero if the planned and unplanned relational engines
# disagree or the planner takes a full n^k complement on conjunctive
# negation — the agreement gate for the columnar kernel + planner.
dune exec bench/main.exe -- --only E13 --smoke
# E14 exits non-zero if a warm session or a batch (jobs 1 and 4) ever
# disagrees with a fresh engine, or if the session hit counters stay
# zero — the agreement gate for the session layer.
dune exec bench/main.exe -- --only E14 --smoke
# E15 drives a real foc-serve daemon with 8 concurrent clients under
# mixed read/write and exits non-zero if any answer disagrees with a
# fresh sequential engine at the version it was served on.
dune exec bench/main.exe -- --only E15 --smoke
# E16 exits non-zero if histograms fail to flip the join order on
# hub-skewed data, the adaptive feedback loop never re-plans, any count
# deviates from the unplanned baseline / Naive, or incrementally
# maintained statistics drift from recollection — the agreement gate
# for the statistics layer and the adaptive planner.
dune exec bench/main.exe -- --only E16 --smoke
dune exec bin/foc_cli.exe -- gen -n 300 --class random-tree --colours \
  -o /tmp/ci_tree.foc
dune exec bin/foc_cli.exe -- count -s /tmp/ci_tree.foc \
  "#(x,y). (R(x) & E(x,y))" -e cover --jobs 2 \
  --trace /tmp/ci_trace.json --stats --metrics
dune exec bin/foc_cli.exe -- trace-check /tmp/ci_trace.json
# CLI batch round-trip: session answers must match per-sentence checks
printf 'exists x. (#(y). E(x,y)) >= 1\n#(x,y). (E(x,y) & R(x)) >= 5\n' \
  > /tmp/ci_batch.txt
dune exec bin/foc_cli.exe -- batch -s /tmp/ci_tree.foc --repeat 2 --stats \
  /tmp/ci_batch.txt | tee /tmp/ci_batch_out.txt
a=$(dune exec bin/foc_cli.exe -- check -s /tmp/ci_tree.foc \
  "exists x. (#(y). E(x,y)) >= 1" | head -1)
b=$(dune exec bin/foc_cli.exe -- check -s /tmp/ci_tree.foc \
  "#(x,y). (E(x,y) & R(x)) >= 5" | head -1)
batch_got=$(grep -E '^(true|false)$' /tmp/ci_batch_out.txt | tr '\n' ' ')
[ "$batch_got" = "$a $b " ] || {
  echo "ci: batch round-trip mismatch: got '$batch_got' want '$a $b'"
  exit 1
}
grep -q 'session.compiled_hits=2' /tmp/ci_batch_out.txt || {
  echo "ci: warm batch reported no compiled hits"
  exit 1
}
# serve/call round-trip: daemon on a unix socket, queried over the wire.
# The binary is built above; run it directly so the daemon is a plain
# background process we can wait on.
FOC=_build/default/bin/foc_cli.exe
SOCK=/tmp/ci_serve.sock
rm -f "$SOCK"
"$FOC" serve -s /tmp/ci_tree.foc --socket "$SOCK" &
SERVE_PID=$!
# poll until the daemon answers a ping (or give up after ~5s)
i=0
until "$FOC" call --socket "$SOCK" '{"op":"ping"}' >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 50 ] || { echo "ci: serve daemon never came up"; exit 1; }
  sleep 0.1
done
"$FOC" call --socket "$SOCK" \
  '{"op":"check","query":"exists x. (#(y). E(x,y)) >= 1"}' \
  | tee /tmp/ci_serve_out.txt
served=$(grep -o '"result":[a-z]*' /tmp/ci_serve_out.txt | cut -d: -f2)
[ "$served" = "$a" ] || {
  echo "ci: served answer '$served' disagrees with direct check '$a'"
  exit 1
}
"$FOC" call --socket "$SOCK" '{"op":"insert","rel":"E","tuple":[0,1]}' \
  '{"op":"stats"}' '{"op":"shutdown"}' >/dev/null
wait "$SERVE_PID" || { echo "ci: serve daemon exited non-zero"; exit 1; }
