(* The foc command-line tool.

     foc gen   --class random-tree --n 1000 -o tree.foc
     foc check --structure tree.foc "exists x. prime(#(y). E(x,y))"
     foc count --structure tree.foc "#(x,y). E(x,y)"
     foc query --structure tree.foc --head x "#(y). E(x,y)" --body "R(x)"

   Engines: direct | cover | splitter | relalg | naive. *)

open Cmdliner

let engine_conv =
  Arg.enum
    [
      ("direct", `Direct);
      ("cover", `Cover);
      ("splitter", `Splitter);
      ("hanf", `Hanf);
      ("relalg", `Relalg);
      ("naive", `Naive);
    ]

let structure_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "structure" ] ~docv:"FILE" ~doc:"Structure file to query.")

let engine_arg =
  Arg.(
    value
    & opt engine_conv `Direct
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine: $(b,direct), $(b,cover), $(b,splitter) (the \
           paper's algorithm with three back-ends), $(b,relalg) (baseline) \
           or $(b,naive) (Definition 3.1 verbatim; exponential).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains used by the direct/cover/hanf back-ends. $(b,1) forces \
           the sequential path; $(b,0) (default) uses \
           Domain.recommended_domain_count (or \\$FOC_JOBS). All settings \
           return identical counts.")

let ball_cache_arg =
  Arg.(
    value & opt int 64
    & info [ "ball-cache-mb" ] ~docv:"MB"
        ~doc:
          "Memory bound (MiB) for each ball cache of the direct/cover/hanf \
           back-ends. $(b,0) keeps only the most recent ball. All settings \
           return identical counts; only memory and time change.")

let stats_buckets_arg =
  Arg.(
    value & opt int 64
    & info [ "stats-buckets" ] ~docv:"N"
        ~doc:
          "Equi-depth histogram resolution of the join-planning statistics \
           (relalg baseline and engine fallbacks). $(b,0) disables \
           histograms; row and distinct counts remain. Never changes \
           results.")

let no_adaptive_arg =
  Arg.(
    value & flag
    & info [ "no-adaptive" ]
        ~doc:
          "Disable the adaptive re-planning loop that compares the \
           planner's estimated join cardinalities against the actual ones \
           and re-orders repeated conjunctions. Never changes results.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record phase spans and write them to $(docv) as Chrome \
           trace_event JSON (load in chrome://tracing or \
           https://ui.perfetto.dev). Never changes results.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the full metrics report (one line per metric, histograms \
           with buckets) and enable sweep-duration timing.")

let log_level_arg =
  Arg.(
    value & opt string "error"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Diagnostic verbosity on stderr: $(b,quiet), $(b,error), \
           $(b,info) (e.g. fallback decisions) or $(b,debug) (also echoes \
           each completed span as a logfmt line).")

let load_structure path =
  match Foc.Structure_io.load path with
  | Ok a -> a
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2

(* applies --log-level / --metrics / --trace before evaluation runs *)
let setup_obs ~trace ~metrics ~log_level =
  (match Foc.Obs.Log.level_of_string log_level with
  | Some l ->
      Foc.Obs.Log.set_level l;
      if l = Foc.Obs.Log.Debug then
        Foc.Obs.Trace.set_logfmt_sink (Some prerr_endline)
  | None ->
      Printf.eprintf
        "error: bad --log-level %S (quiet|error|info|debug)\n" log_level;
      exit 2);
  if metrics || trace <> None then Foc.Obs.set_timing true;
  if trace <> None then Foc.Obs.Trace.enable ()

(* report + export at command end; the export here also covers the
   baseline engines, which have no Engine.t to export for them *)
let finish_obs ~trace ~metrics eng =
  (match eng with
  | Some e when metrics ->
      List.iter
        (Printf.printf "# metric: %s\n")
        (Foc.Obs.Metrics.report (Foc.Engine.metrics e))
  | _ -> ());
  match trace with
  | Some path -> Foc.Obs.Trace.export_chrome path
  | None -> ()

let make_engine ?(jobs = 0) ?(ball_cache_mb = 64) ?(stats_buckets = 64)
    ?(adaptive = true) ?trace_file engine =
  let jobs = if jobs <= 0 then Foc.Par.default_jobs () else jobs in
  let with_backend backend =
    Some
      (Foc.Engine.create
         ~config:
           {
             Foc.Engine.default_config with
             backend;
             jobs;
             ball_cache_mb;
             trace_file;
             stats_buckets;
             adaptive;
           }
         ())
  in
  match engine with
  | `Direct -> with_backend Foc.Engine.Direct
  | `Cover -> with_backend Foc.Engine.Cover
  | `Splitter ->
      with_backend (Foc.Engine.Splitter { max_rounds = 4; small = 32 })
  | `Hanf -> with_backend Foc.Engine.Hanf
  | `Relalg | `Naive -> None

(* one shared logfmt emitter behind "# stats:", so a newly added counter
   can never drift out of the printout (same line the bench prints) *)
let print_stats eng =
  Printf.printf "# stats: %s\n" (Foc.Engine.stats_line eng)

(* the relalg baseline plans with the same statistics layer as the engine
   fallbacks: one collect per structure, memoised across a query's
   sub-evaluations *)
let make_relalg_ctx ~stats_buckets ~adaptive () =
  let memo = ref [] in
  let stats_for a =
    match List.assq_opt a !memo with
    | Some st -> st
    | None ->
        let st = Foc.Stats.collect ~buckets:stats_buckets a in
        memo := (a, st) :: !memo;
        st
  in
  Foc.Relalg.make_ctx ~stats_for ~buckets:stats_buckets ~adaptive ()

let print_baseline_stats () =
  Printf.printf "# stats: %s\n" (Foc.Eval_obs.line ())

(* wall clock: with --jobs > 1, CPU time would sum across domains *)
let timed = Foc.Obs.Clock.timed

(* ---------------- check ---------------- *)

let check_cmd =
  let run structure engine jobs ball_cache_mb stats_buckets no_adaptive
      stats trace metrics log_level
      src =
    setup_obs ~trace ~metrics ~log_level;
    let a = load_structure structure in
    let phi =
      try Foc.parse_formula src
      with Foc.Parser.Error (m, p) ->
        Printf.eprintf "parse error at %d: %s\n" p m;
        exit 2
    in
    let eng = make_engine ~jobs ~ball_cache_mb ~stats_buckets
        ~adaptive:(not no_adaptive) ?trace_file:trace engine in
    let result, seconds =
      match eng with
      | Some eng ->
          let r = timed (fun () -> Foc.Engine.check eng a phi) in
          if stats then print_stats eng;
          r
      | None ->
          if engine = `Naive then
            timed (fun () ->
                Foc.Obs.span ~name:"naive" (fun () ->
                    Foc.Naive.sentence Foc.predicates a phi))
          else begin
            let ctx =
              make_relalg_ctx ~stats_buckets ~adaptive:(not no_adaptive) ()
            in
            let r =
              timed (fun () ->
                  Foc.Obs.span ~name:"fallback" (fun () ->
                      Foc.Relalg.holds ~ctx Foc.predicates a [] phi))
            in
            if stats then print_baseline_stats ();
            r
          end
    in
    finish_obs ~trace ~metrics eng;
    Printf.printf "%b\n" result;
    Printf.printf "# %.6fs\n" seconds
  in
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SENTENCE" ~doc:"FOC(P) sentence to model-check.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Model-check a FOC(P) sentence on a structure.")
    Term.(
      const run $ structure_arg $ engine_arg $ jobs_arg $ ball_cache_arg
      $ stats_buckets_arg $ no_adaptive_arg $ stats_arg $ trace_arg $ metrics_arg $ log_level_arg $ src)

(* ---------------- count ---------------- *)

let count_cmd =
  let run structure engine jobs ball_cache_mb stats_buckets no_adaptive
      stats trace metrics log_level
      src =
    setup_obs ~trace ~metrics ~log_level;
    let a = load_structure structure in
    let term =
      try Foc.parse_term src
      with Foc.Parser.Error (m, p) ->
        Printf.eprintf "parse error at %d: %s\n" p m;
        exit 2
    in
    let eng = make_engine ~jobs ~ball_cache_mb ~stats_buckets
        ~adaptive:(not no_adaptive) ?trace_file:trace engine in
    let result, seconds =
      match eng with
      | Some eng ->
          let r = timed (fun () -> Foc.Engine.eval_ground eng a term) in
          if stats then print_stats eng;
          r
      | None ->
          if engine = `Naive then
            timed (fun () ->
                Foc.Obs.span ~name:"naive" (fun () ->
                    Foc.Naive.ground_term Foc.predicates a term))
          else begin
            let ctx =
              make_relalg_ctx ~stats_buckets ~adaptive:(not no_adaptive) ()
            in
            let r =
              timed (fun () ->
                  Foc.Obs.span ~name:"fallback" (fun () ->
                      Foc.Relalg.term_value ~ctx Foc.predicates a [] term))
            in
            if stats then print_baseline_stats ();
            r
          end
    in
    finish_obs ~trace ~metrics eng;
    Printf.printf "%d\n" result;
    Printf.printf "# %.6fs\n" seconds
  in
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TERM" ~doc:"Ground counting term to evaluate.")
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Evaluate a ground counting term on a structure.")
    Term.(
      const run $ structure_arg $ engine_arg $ jobs_arg $ ball_cache_arg
      $ stats_buckets_arg $ no_adaptive_arg $ stats_arg $ trace_arg $ metrics_arg $ log_level_arg $ src)

(* ---------------- socket plumbing (query/serve/call/...) ---------------- *)

(* --socket PATH (Unix domain) wins over --tcp [HOST:]PORT *)
let parse_address socket tcp =
  match (socket, tcp) with
  | Some path, _ -> Some (Foc.Server.Unix_sock path)
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p -> Some (Foc.Server.Tcp (host, p))
          | None -> None)
      | None -> (
          match int_of_string_opt spec with
          | Some p -> Some (Foc.Server.Tcp ("127.0.0.1", p))
          | None -> None))
  | None, None -> None

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Serve on a Unix-domain socket.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"[HOST:]PORT"
        ~doc:"Serve on TCP (default host 127.0.0.1; port 0 picks a free one).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Deadline (seconds) on connecting and on each response; without \
           it a hung server blocks forever. Exit code $(b,3) = cannot \
           connect, $(b,4) = timed out or connection lost.")

(* ---------------- query ---------------- *)

let query_cmd =
  let run structure engine jobs ball_cache_mb stats_buckets no_adaptive
      stats trace metrics log_level
      head terms body limit page socket tcp timeout =
    setup_obs ~trace ~metrics ~log_level;
    (* remote: stream over a running foc serve (no structure file needed) *)
    (match parse_address socket tcp with
    | Some address ->
        let c =
          try Foc.Server_client.connect ?timeout address
          with Unix.Unix_error (e, _, _) ->
            Printf.eprintf "cannot connect: %s\n" (Unix.error_message e);
            exit 3
        in
        let nrows = ref 0 in
        let t0 = Unix.gettimeofday () in
        let req =
          {
            Foc.Server_protocol.q_head = head;
            q_terms = terms;
            q_body = body;
            q_limit = Some limit;
            q_chunk = page;
            q_after = None;
          }
        in
        (match
           Foc.Server_client.query_iter c req (fun (tuple, values) ->
               incr nrows;
               Array.iter (Printf.printf "%d ") tuple;
               print_string "| ";
               Array.iter (Printf.printf "%d ") values;
               print_newline ())
         with
        | Ok producer ->
            Printf.printf "# %d rows, %.6fs (streamed, producer=%s)\n" !nrows
              (Unix.gettimeofday () -. t0)
              producer;
            Foc.Server_client.close c;
            exit 0
        | Error e ->
            Printf.eprintf "server error: %s\n" e;
            exit 1
        | exception Foc.Server_client.Timeout ->
            Printf.eprintf "timeout\n";
            exit 4
        | exception End_of_file ->
            Printf.eprintf "connection lost\n";
            exit 4)
    | None -> ());
    let a =
      match structure with
      | Some path -> load_structure path
      | None ->
          Printf.eprintf
            "error: query needs --structure FILE (or --socket/--tcp for a \
             running server)\n";
          exit 2
    in
    let parse_t s =
      try Foc.parse_term s
      with Foc.Parser.Error (m, p) ->
        Printf.eprintf "parse error in term at %d: %s\n" p m;
        exit 2
    in
    let body_f =
      try Foc.parse_formula body
      with Foc.Parser.Error (m, p) ->
        Printf.eprintf "parse error in body at %d: %s\n" p m;
        exit 2
    in
    let q =
      try
        Foc.Query.make ~head_vars:head
          ~head_terms:(List.map parse_t terms)
          body_f
      with Invalid_argument m ->
        Printf.eprintf "bad query: %s\n" m;
        exit 2
    in
    let eng = make_engine ~jobs ~ball_cache_mb ~stats_buckets
        ~adaptive:(not no_adaptive) ?trace_file:trace engine in
    (* --page: stream through a pull cursor instead of materialising;
       rows print as they are produced and --limit caps production, not
       just printing *)
    (match (page, eng) with
    | Some _, None ->
        Printf.eprintf
          "error: --page needs a localized engine \
           (direct|cover|splitter|hanf)\n";
        exit 2
    | Some _, Some eng ->
        let t0 = Unix.gettimeofday () in
        let cur = Foc.Engine.enumerate eng ~limit a q in
        let ttfr = ref 0. in
        let nrows = ref 0 in
        let rec drain () =
          match cur.Foc.Enum.next () with
          | None -> ()
          | Some (tuple, values) ->
              if !nrows = 0 then ttfr := Unix.gettimeofday () -. t0;
              incr nrows;
              Array.iter (Printf.printf "%d ") tuple;
              print_string "| ";
              Array.iter (Printf.printf "%d ") values;
              print_newline ();
              drain ()
        in
        drain ();
        cur.Foc.Enum.close ();
        if stats then print_stats eng;
        finish_obs ~trace ~metrics (Some eng);
        Printf.printf
          "# %d rows, %.6fs (streamed, producer=%s, ttfr %.6fs)\n" !nrows
          (Unix.gettimeofday () -. t0)
          cur.Foc.Enum.producer !ttfr;
        exit 0
    | None, _ -> ());
    let rows, seconds =
      match eng with
      | Some eng ->
          let r = timed (fun () -> Foc.Engine.run_query eng a q) in
          if stats then print_stats eng;
          r
      | None ->
          if engine = `Naive then
            timed (fun () ->
                Foc.Obs.span ~name:"naive" (fun () ->
                    Foc.Naive.query Foc.predicates a q))
          else begin
            let ctx =
              make_relalg_ctx ~stats_buckets ~adaptive:(not no_adaptive) ()
            in
            let r =
              timed (fun () ->
                  Foc.Obs.span ~name:"fallback" (fun () ->
                      Foc.Relalg.query ~ctx Foc.predicates a q))
            in
            if stats then print_baseline_stats ();
            r
          end
    in
    finish_obs ~trace ~metrics eng;
    Printf.printf "# %d rows, %.6fs\n" (List.length rows) seconds;
    List.iteri
      (fun i (tuple, values) ->
        if i < limit then begin
          Array.iter (Printf.printf "%d ") tuple;
          print_string "| ";
          Array.iter (Printf.printf "%d ") values;
          print_newline ()
        end)
      rows
  in
  let head =
    Arg.(
      value & opt_all string []
      & info [ "head" ] ~docv:"VAR" ~doc:"Head variable (repeatable).")
  in
  let terms =
    Arg.(
      value & opt_all string []
      & info [ "term" ] ~docv:"TERM" ~doc:"Head counting term (repeatable).")
  in
  let body =
    Arg.(
      required
      & opt (some string) None
      & info [ "body" ] ~docv:"FORMULA" ~doc:"Query body.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N"
          ~doc:
            "Print at most N rows (with $(b,--page) or a remote server, \
             also stop producing after N rows).")
  in
  let page =
    Arg.(
      value
      & opt (some int) None
      & info [ "page" ] ~docv:"N"
          ~doc:
            "Stream answers instead of materialising them: locally, pull \
             rows one at a time from an enumeration cursor (needs a \
             localized engine); remotely, fetch N rows per chunk.")
  in
  let structure_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "structure" ] ~docv:"FILE"
          ~doc:
            "Structure file (required unless querying a remote server \
             with $(b,--socket)/$(b,--tcp)).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a FOC1(P)-query (Definition 5.2).")
    Term.(
      const run $ structure_opt $ engine_arg $ jobs_arg $ ball_cache_arg
      $ stats_buckets_arg $ no_adaptive_arg $ stats_arg $ trace_arg $ metrics_arg $ log_level_arg $ head $ terms
      $ body $ limit $ page $ socket_arg $ tcp_arg $ timeout_arg)

(* ---------------- gen ---------------- *)

let gen_cmd =
  let class_conv =
    Arg.enum
      (List.map (fun (c : Foc.Classes.t) -> (c.name, c)) Foc.Classes.standard)
  in
  let run cls n seed colours output =
    let g = cls.Foc.Classes.generate ~seed ~n in
    let a =
      if colours then begin
        let rng = Random.State.make [| seed; 17 |] in
        Foc.Db_gen.colored_digraph rng ~graph:g ~orient:`Both ~p_red:0.3
          ~p_blue:0.4 ~p_green:0.3
      end
      else Foc.Structure.of_graph g
    in
    match output with
    | Some path ->
        Foc.Structure_io.save path a;
        Printf.printf "wrote %s (order %d, size %d)\n" path
          (Foc.Structure.order a) (Foc.Structure.size a)
    | None -> print_string (Foc.Structure_io.to_string a)
  in
  let cls =
    Arg.(
      required
      & opt (some class_conv) None
      & info [ "class" ] ~docv:"CLASS"
          ~doc:"Workload class (random-tree, grid, clique, ...).")
  in
  let n =
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Target order.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let colours =
    Arg.(
      value & flag
      & info [ "colours" ]
          ~doc:"Add random R/B/G unary relations (Example 5.4 style).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload structure.")
    Term.(const run $ cls $ n $ seed $ colours $ output)

(* ---------------- trace-check ---------------- *)

(* Validate a --trace output: parseable JSON, an array of complete
   ("ph":"X") events each carrying name/ts/dur/pid/tid. Used by ci.sh to
   fail the build on malformed exports; no external JSON tool needed. *)
let trace_check_cmd =
  let run path =
    let contents =
      try
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with Sys_error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    in
    match Foc.Obs.Json.parse contents with
    | Error e ->
        Printf.eprintf "trace-check: %s: invalid JSON: %s\n" path e;
        exit 1
    | Ok (Foc.Obs.Json.List events) ->
        let bad = ref 0 in
        List.iteri
          (fun i ev ->
            let field k = Foc.Obs.Json.member k ev in
            let ok =
              match
                (field "name", field "ph", field "ts", field "dur",
                 field "pid", field "tid")
              with
              | ( Some (Foc.Obs.Json.Str _),
                  Some (Foc.Obs.Json.Str "X"),
                  Some (Foc.Obs.Json.Num ts),
                  Some (Foc.Obs.Json.Num dur),
                  Some (Foc.Obs.Json.Num _),
                  Some (Foc.Obs.Json.Num _) ) ->
                  ts >= 0. && dur >= 0.
              | _ -> false
            in
            if not ok then begin
              incr bad;
              Printf.eprintf "trace-check: %s: bad event %d\n" path i
            end)
          events;
        if !bad > 0 then exit 1;
        Printf.printf "trace-check: %s: ok (%d events)\n" path
          (List.length events)
    | Ok _ ->
        Printf.eprintf "trace-check: %s: top level is not an array\n" path;
        exit 1
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by $(b,--trace).")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a Chrome trace_event JSON file produced by $(b,--trace).")
    Term.(const run $ path)

(* ---------------- gendb / sql ---------------- *)

let gendb_cmd =
  let run customers orders countries cities seed output =
    let rng = Random.State.make [| seed |] in
    let d =
      Foc.Db_gen.customer_order rng ~customers ~orders ~countries ~cities
    in
    match output with
    | Some path ->
        Foc.Structure_io.save path d.Foc.Db_gen.db;
        Printf.printf "wrote %s (order %d, size %d)\n" path
          (Foc.Structure.order d.Foc.Db_gen.db)
          (Foc.Structure.size d.Foc.Db_gen.db)
    | None -> print_string (Foc.Structure_io.to_string d.Foc.Db_gen.db)
  in
  let customers =
    Arg.(value & opt int 100 & info [ "customers" ] ~docv:"N" ~doc:"Customers.")
  in
  let orders =
    Arg.(value & opt int 400 & info [ "orders" ] ~docv:"N" ~doc:"Orders.")
  in
  let countries =
    Arg.(value & opt int 10 & info [ "countries" ] ~docv:"N" ~doc:"Countries.")
  in
  let cities =
    Arg.(value & opt int 20 & info [ "cities" ] ~docv:"N" ~doc:"Cities.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "gendb"
       ~doc:"Generate a Customer/Order database (Example 5.3 schema).")
    Term.(const run $ customers $ orders $ countries $ cities $ seed $ output)

let sql_cmd =
  let run structure engine jobs ball_cache_mb stats_buckets no_adaptive
      stats trace metrics log_level
      src limit =
    setup_obs ~trace ~metrics ~log_level;
    let a = load_structure structure in
    let q =
      try
        Foc.Sql_compile.parse_to_query Foc.Sql_schema.customer_order
          ~consts:[ ("Berlin", Foc.Db_gen.berlin_rel) ]
          src
      with Foc.Sql_compile.Error m ->
        Printf.eprintf "SQL error: %s\n" m;
        exit 2
    in
    Printf.printf "FOC1> %s\n" (Format.asprintf "%a" Foc.Query.pp q);
    let eng = make_engine ~jobs ~ball_cache_mb ~stats_buckets
        ~adaptive:(not no_adaptive) ?trace_file:trace engine in
    let rows, seconds =
      match eng with
      | Some eng ->
          let r = timed (fun () -> Foc.Engine.run_query eng a q) in
          if stats then print_stats eng;
          r
      | None ->
          if engine = `Naive then
            timed (fun () ->
                Foc.Obs.span ~name:"naive" (fun () ->
                    Foc.Naive.query Foc.predicates a q))
          else begin
            let ctx =
              make_relalg_ctx ~stats_buckets ~adaptive:(not no_adaptive) ()
            in
            let r =
              timed (fun () ->
                  Foc.Obs.span ~name:"fallback" (fun () ->
                      Foc.Relalg.query ~ctx Foc.predicates a q))
            in
            if stats then print_baseline_stats ();
            r
          end
    in
    finish_obs ~trace ~metrics eng;
    Printf.printf "# %d rows, %.6fs\n" (List.length rows) seconds;
    List.iteri
      (fun i (tuple, values) ->
        if i < limit then begin
          Array.iter (Printf.printf "%d ") tuple;
          print_string "| ";
          Array.iter (Printf.printf "%d ") values;
          print_newline ()
        end)
      rows
  in
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL"
          ~doc:
            "SQL COUNT statement over the Customer/Order schema (Example \
             5.3); the literal 'Berlin' is bound to the generated marker.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most N rows.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run an SQL COUNT statement compiled to FOC1.")
    Term.(
      const run $ structure_arg $ engine_arg $ jobs_arg $ ball_cache_arg
      $ stats_buckets_arg $ no_adaptive_arg $ stats_arg $ trace_arg $ metrics_arg $ log_level_arg $ src $ limit)

let budget_arg =
  Arg.(
    value & opt int 256
    & info [ "budget-mb" ] ~docv:"MB"
        ~doc:
          "Session artifact-cache budget (MiB): covers, ball contexts, \
           Hanf partitions and compiled sentences share this bound. \
           $(b,0) keeps only the most recent artifact. Never changes \
           results.")

(* ---------------- serve / call ---------------- *)

let serve_cmd =
  let run structure engine jobs ball_cache_mb stats_buckets no_adaptive
      budget_mb socket tcp max_queue client_budget max_batch slow_ms
      slow_log trace trace_cap store checkpoint_every max_cursors log_level =
    setup_obs ~trace:None ~metrics:false ~log_level;
    let a = load_structure structure in
    let address =
      match parse_address socket tcp with
      | Some addr -> addr
      | None ->
          Printf.eprintf
            "error: serve needs --socket PATH or --tcp [HOST:]PORT\n";
          exit 2
    in
    let backend =
      match engine with
      | `Direct -> Foc.Engine.Direct
      | `Cover -> Foc.Engine.Cover
      | `Splitter -> Foc.Engine.Splitter { max_rounds = 4; small = 32 }
      | `Hanf -> Foc.Engine.Hanf
      | `Relalg | `Naive ->
          Printf.eprintf
            "error: serve runs on a session engine \
             (direct|cover|splitter|hanf)\n";
          exit 2
    in
    let jobs = if jobs <= 0 then Foc.Par.default_jobs () else jobs in
    let cfg =
      {
        (Foc.Server.default_config address) with
        Foc.Server.engine =
          {
            Foc.Engine.default_config with
            backend;
            jobs = 1;
            ball_cache_mb;
            stats_buckets;
            adaptive = not no_adaptive;
          };
        budget_mb;
        jobs;
        max_queue;
        client_budget;
        max_batch;
        slow_ms;
        slow_log;
        trace_file = trace;
        trace_cap;
        store;
        checkpoint_every;
        max_cursors;
      }
    in
    let srv = Foc.Server.start cfg a in
    (* stop gracefully on ctrl-C / TERM: drain in-flight, then exit *)
    let on_signal _ = Thread.create (fun () -> Foc.Server.stop srv) () |> ignore in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with Invalid_argument _ -> ());
    (match Foc.Server.address srv with
    | Foc.Server.Unix_sock path -> Printf.printf "listening on unix:%s\n%!" path
    | Foc.Server.Tcp (host, port) ->
        Printf.printf "listening on tcp:%s:%d\n%!" host port);
    Foc.Server.wait srv;
    Printf.printf "server stopped after %d writes\n" (Foc.Server.version srv)
  in
  let max_queue =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Bound on queued requests; submissions beyond it are shed with \
             an $(b,overloaded) error (admission control).")
  in
  let client_budget =
    Arg.(
      value & opt int 0
      & info [ "client-budget" ] ~docv:"N"
          ~doc:
            "Requests allowed per connection; once spent, requests are \
             rejected ($(b,ping) stays free). $(b,0) = unlimited.")
  in
  let max_batch =
    Arg.(
      value & opt int 32
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Most consecutive $(b,check) requests grouped into one \
             parallel session batch.")
  in
  let slow_ms =
    Arg.(
      value & opt float 0.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold: any request whose total latency exceeds \
             $(docv) milliseconds emits one logfmt line (timing breakdown \
             + plan summary) to the slow-query sink. $(b,0) (default) \
             disables the log.")
  in
  let slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:
            "Slow-query sink: a size-rotated file at $(docv) (FILE.1..3 \
             kept). Default: stderr.")
  in
  let serve_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record phase spans (including session worker domains) for the \
             daemon's lifetime and export them to $(docv) as Chrome \
             trace_event JSON on shutdown. Never changes results.")
  in
  let trace_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:
            "Bound each per-domain span buffer to $(docv) events; the \
             oldest events are overwritten and counted as drops (surfaced \
             in $(b,stats) and $(b,metrics)). Default 262144.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent prepared-structure store: load the newest valid \
             snapshot from $(docv) on start (replaying its write-ahead \
             log) instead of rebuilding covers and partitions from \
             scratch — falling back to a full rebuild if the store is \
             missing or damaged — then log every accepted write to the \
             WAL and checkpoint on graceful shutdown.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1024
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "With $(b,--store): also write a fresh snapshot (compacting \
             the WAL) after every $(docv) accepted writes. $(b,0) \
             disables periodic checkpoints; graceful shutdown still \
             checkpoints.")
  in
  let max_cursors_arg =
    Arg.(
      value & opt int 8
      & info [ "max-cursors" ] ~docv:"N"
          ~doc:
            "Most streaming query cursors one connection may hold open; \
             a $(b,query) over the budget is rejected.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent query-server daemon: line-oriented JSON over \
          a Unix or TCP socket, many clients multiplexed onto one query \
          session (try: socat - UNIX-CONNECT:/tmp/foc.sock).")
    Term.(
      const run $ structure_arg $ engine_arg $ jobs_arg $ ball_cache_arg
      $ stats_buckets_arg $ no_adaptive_arg $ budget_arg $ socket_arg
      $ tcp_arg $ max_queue $ client_budget $ max_batch $ slow_ms
      $ slow_log $ serve_trace $ trace_cap $ store_arg
      $ checkpoint_every_arg $ max_cursors_arg $ log_level_arg)

(* distinct exit codes so scripts can tell failure modes apart:
   2 = usage, 3 = cannot connect, 4 = timeout / connection lost,
   1 = the server answered with an error (or a malformed line) *)
let require_address ~cmd socket tcp =
  match parse_address socket tcp with
  | Some addr -> addr
  | None ->
      Printf.eprintf "error: %s needs --socket PATH or --tcp [HOST:]PORT\n"
        cmd;
      exit 2

let connect_or_die ?timeout address =
  try Foc.Server_client.connect ?timeout address with
  | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot connect: %s\n" (Unix.error_message e);
      exit 3
  | Foc.Server_client.Timeout ->
      Printf.eprintf "error: connect timed out\n";
      exit 3

let call_cmd =
  let run socket tcp timeout requests =
    let address = require_address ~cmd:"call" socket tcp in
    let c = connect_or_die ?timeout address in
    let failed = ref false in
    List.iter
      (fun line ->
        Foc.Server_client.send_raw c line;
        match Foc.Server_client.recv_raw c with
        | resp ->
            print_endline resp;
            (match Foc.Server_protocol.parse_response resp with
            | Ok (_, Foc.Server_protocol.Error _) | Error _ -> failed := true
            | Ok _ -> ())
        | exception End_of_file ->
            Printf.eprintf "error: server closed the connection\n";
            exit 4
        | exception Foc.Server_client.Timeout ->
            Printf.eprintf "error: no response within the deadline\n";
            exit 4)
      requests;
    Foc.Server_client.close c;
    if !failed then exit 1
  in
  let requests =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request line(s) to send, e.g. $(b,{\"op\":\"ping\"}) — sent \
             verbatim, one response line printed per request. Exits \
             non-zero if any response is an error.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Send raw protocol request lines to a running $(b,foc serve).")
    Term.(const run $ socket_arg $ tcp_arg $ timeout_arg $ requests)

(* ---------------- explain ---------------- *)

(* run one request against a live server, mapping failure modes to the
   same exit codes as [foc call] *)
let remote_rpc ?timeout address req =
  let c = connect_or_die ?timeout address in
  Fun.protect
    ~finally:(fun () -> Foc.Server_client.close c)
    (fun () ->
      match Foc.Server_client.rpc c req with
      | resp -> resp
      | exception End_of_file ->
          Printf.eprintf "error: server closed the connection\n";
          exit 4
      | exception Foc.Server_client.Timeout ->
          Printf.eprintf "error: no response within the deadline\n";
          exit 4)

let print_remote_explain (e : Foc.Server_protocol.explain) =
  Printf.printf "result:  %b (structure version %d)\n" e.result e.version;
  Printf.printf "cached:  %b\n" e.cached;
  Printf.printf "replans: %d (process-wide)\n" e.replans;
  if e.plans = [] then
    print_endline
      "plans:   none — no baseline conjunction planning ran (cached \
       answer, or handled entirely by locality kernels)"
  else
    List.iteri
      (fun i (p : Foc.Server_protocol.plan_info) ->
        Printf.printf "plan %d:  join order [%s]%s\n" i
          (String.concat " "
             (List.map string_of_int p.order))
          (if p.replanned then "  (adaptive replan)" else "");
        List.iteri
          (fun j (est, act) ->
            Printf.printf "  step %d: predicted %d rows, actual %d\n" j est
              act)
          p.steps)
      e.plans

let explain_cmd =
  let run kind socket tcp timeout src =
    match parse_address socket tcp with
    | Some address ->
        (* remote: evaluate on the server and report the planner's story *)
        if kind = `Term then begin
          Printf.eprintf
            "error: remote explain takes a sentence (no --kind term)\n";
          exit 2
        end;
        (match remote_rpc ?timeout address (Foc.Server_protocol.Explain src)
         with
        | Foc.Server_protocol.Explain_r e -> print_remote_explain e
        | Foc.Server_protocol.Error m ->
            Printf.eprintf "error: %s\n" m;
            exit 1
        | _ ->
            Printf.eprintf "error: unexpected response\n";
            exit 1)
    | None -> (
        (* local: static evaluation plan, no structure needed *)
        match kind with
        | `Term -> begin
            match Foc.Parser.term_result Foc.predicates src with
            | Error e ->
                Printf.eprintf "%s\n" e;
                exit 2
            | Ok t ->
                Format.printf "%a@." Foc.Plan.pp (Foc.Plan.term_plan t)
          end
        | `Formula -> begin
            match Foc.Parser.formula_result Foc.predicates src with
            | Error e ->
                Printf.eprintf "%s\n" e;
                exit 2
            | Ok f ->
                Format.printf "%a@." Foc.Plan.pp (Foc.Plan.formula_plan f)
          end)
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("term", `Term); ("formula", `Formula) ]) `Formula
      & info [ "kind" ] ~docv:"KIND" ~doc:"Parse as $(b,term) or $(b,formula).")
  in
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPR" ~doc:"Expression to explain.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the evaluation plan. Without an address: the static plan \
          (kernels, certified radii, decomposition sizes, fallbacks). With \
          $(b,--socket)/$(b,--tcp): evaluate on a running $(b,foc serve) \
          and report the join order, predicted vs actual rows per step, \
          and replan events.")
    Term.(const run $ kind $ socket_arg $ tcp_arg $ timeout_arg $ src)

(* ---------------- metrics / top ---------------- *)

let metrics_cmd =
  let run socket tcp timeout =
    let address = require_address ~cmd:"metrics" socket tcp in
    match remote_rpc ?timeout address Foc.Server_protocol.Metrics with
    | Foc.Server_protocol.Metrics_r page -> print_string page
    | Foc.Server_protocol.Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 1
    | _ ->
        Printf.eprintf "error: unexpected response\n";
        exit 1
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Fetch the Prometheus text exposition (request latency \
          histograms, cache counters, planner estimates) from a running \
          $(b,foc serve).")
    Term.(const run $ socket_arg $ tcp_arg $ timeout_arg)

let top_cmd =
  let run socket tcp timeout interval count =
    let address = require_address ~cmd:"top" socket tcp in
    let c = connect_or_die ?timeout address in
    let tty = Unix.isatty Unix.stdout in
    let prev_served = ref 0 and prev_version = ref 0 and polls = ref 0 in
    let show (s : Foc.Server_protocol.stats) =
      incr polls;
      let d_served = s.served - !prev_served
      and d_writes = s.version - !prev_version in
      let rate =
        if !polls = 1 || interval <= 0. then 0.
        else float_of_int d_served /. interval
      in
      if tty then print_string "\027[H\027[2J";
      Printf.printf "foc top — poll %d (every %.1fs)\n\n" !polls interval;
      Printf.printf "served       %d  (+%d, %.1f/s)\n" s.served d_served rate;
      Printf.printf "writes       %d  (+%d)\n" s.version d_writes;
      Printf.printf "connections  %d\n" s.connections;
      Printf.printf "shed         %d    rejected %d    disconnects %d\n"
        s.shed s.rejected s.disconnects;
      Printf.printf "read latency p50 %dµs   p95 %dµs   p99 %dµs\n" s.p50_us
        s.p95_us s.p99_us;
      if s.trace_dropped > 0 then
        Printf.printf "trace drops  %d\n" s.trace_dropped;
      if s.session <> "" then Printf.printf "session      %s\n" s.session;
      if s.planner <> "" then Printf.printf "planner      %s\n" s.planner;
      if s.source <> "" then
        Printf.printf "cold start   %s in %dms\n" s.source s.load_ms;
      flush stdout;
      prev_served := s.served;
      prev_version := s.version
    in
    let rec loop remaining =
      if remaining <> 0 then begin
        (match Foc.Server_client.rpc c Foc.Server_protocol.Stats with
        | Foc.Server_protocol.Stats_r s -> show s
        | Foc.Server_protocol.Error m ->
            Printf.eprintf "error: %s\n" m;
            exit 1
        | _ ->
            Printf.eprintf "error: unexpected response\n";
            exit 1
        | exception End_of_file ->
            Printf.eprintf "error: server closed the connection\n";
            exit 4
        | exception Foc.Server_client.Timeout ->
            Printf.eprintf "error: no response within the deadline\n";
            exit 4);
        let remaining = if remaining > 0 then remaining - 1 else remaining in
        if remaining <> 0 then begin
          Unix.sleepf (max 0.05 interval);
          loop remaining
        end
      end
    in
    loop (if count <= 0 then -1 else count);
    Foc.Server_client.close c
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between polls.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls; $(b,0) polls until interrupted.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running $(b,foc serve): throughput, latency \
          percentiles, admission-control and cache counters, refreshed \
          every $(b,--interval) seconds.")
    Term.(const run $ socket_arg $ tcp_arg $ timeout_arg $ interval $ count)

(* ---------------- snapshot ---------------- *)

(* `foc snapshot` manages the persistent prepared-structure store offline:
   save prewarms a session and snapshots it, info describes a store
   directory, load verify-restores one (exit 1 on a damaged store, exit 5
   on an answer mismatch so CI can gate on bit-identity). *)

let session_backend ~cmd engine =
  match engine with
  | `Direct -> Foc.Engine.Direct
  | `Cover -> Foc.Engine.Cover
  | `Splitter -> Foc.Engine.Splitter { max_rounds = 4; small = 32 }
  | `Hanf -> Foc.Engine.Hanf
  | `Relalg | `Naive ->
      Printf.eprintf
        "error: %s runs on a session engine (direct|cover|splitter|hanf)\n"
        cmd;
      exit 2

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory.")

let radii_arg =
  Arg.(
    value
    & opt (list int) [ 1 ]
    & info [ "radii" ] ~docv:"R,..."
        ~doc:
          "Locality radii to prewarm and persist: for each radius the \
           neighbourhood cover and Hanf class partition are built \
           eagerly and written into the snapshot.")

let snapshot_queries_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "query" ] ~docv:"SENTENCE"
        ~doc:
          "FOC(P) sentence evaluated after the operation (repeatable). \
           $(b,snapshot load) also re-evaluates it on a fresh engine and \
           fails (exit 5) unless the answers are bit-identical.")

let parse_sentences srcs =
  List.map
    (fun src ->
      try (src, Foc.parse_formula src)
      with Foc.Parser.Error (m, p) ->
        Printf.eprintf "parse error in %S at %d: %s\n" src p m;
        exit 2)
    srcs

let snapshot_save_cmd =
  let run structure engine ball_cache_mb stats_buckets budget_mb radii
      queries log_level dir =
    setup_obs ~trace:None ~metrics:false ~log_level;
    let a = load_structure structure in
    let config =
      {
        Foc.Engine.default_config with
        backend = session_backend ~cmd:"snapshot save" engine;
        jobs = 1;
        ball_cache_mb;
        stats_buckets;
      }
    in
    let sess = Foc.Session.create ~budget_mb ~config a in
    let (), warm_s =
      timed (fun () ->
          Foc.Session.prewarm ~radii sess;
          List.iter
            (fun (_, phi) -> ignore (Foc.Session.check sess phi))
            (parse_sentences queries))
    in
    let path, save_s = timed (fun () -> Foc.Session.save sess ~dir ~version:0) in
    Printf.printf "saved %s  (%d artifacts; prewarm %.3fs, write %.3fs)\n"
      path
      (Foc.Session.cached_artifacts sess)
      warm_s save_s
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:
         "Prewarm a session over a structure (Gaifman graph, statistics, \
          covers and Hanf partitions at $(b,--radii)) and snapshot it \
          into a store directory for instant cold starts.")
    Term.(
      const run $ structure_arg $ engine_arg $ ball_cache_arg
      $ stats_buckets_arg $ budget_arg $ radii_arg $ snapshot_queries_arg
      $ log_level_arg $ store_dir_arg)

let snapshot_info_cmd =
  let run dir =
    print_string (Foc.Store.describe dir);
    flush stdout
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Describe a store directory: every snapshot's section table with \
          sizes and checksum status, plus WAL record counts and torn-tail \
          flags.")
    Term.(const run $ store_dir_arg)

let snapshot_load_cmd =
  let run engine ball_cache_mb stats_buckets budget_mb queries log_level dir
      =
    setup_obs ~trace:None ~metrics:false ~log_level;
    let config =
      {
        Foc.Engine.default_config with
        backend = session_backend ~cmd:"snapshot load" engine;
        jobs = 1;
        ball_cache_mb;
        stats_buckets;
      }
    in
    let loaded, load_s =
      timed (fun () -> Foc.Session.load ~budget_mb ~config ~dir ())
    in
    match loaded with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok l ->
        Printf.printf
          "loaded snapshot v%d + %d WAL record%s%s -> version %d  (%d \
           artifacts, %.3fs)\n"
          l.snapshot_version l.wal_replayed
          (if l.wal_replayed = 1 then "" else "s")
          (if l.wal_torn then " [torn tail discarded]" else "")
          l.version
          (Foc.Session.cached_artifacts l.session)
          load_s;
        let mismatches = ref 0 in
        List.iter
          (fun (src, phi) ->
            let got = Foc.Session.check l.session phi in
            let want =
              Foc.Engine.check
                (Foc.Engine.create ~config ())
                (Foc.Session.structure l.session)
                phi
            in
            if got = want then Printf.printf "%b  %s\n" got src
            else begin
              incr mismatches;
              Printf.printf "MISMATCH loaded=%b fresh=%b  %s\n" got want src
            end)
          (parse_sentences queries);
        if !mismatches > 0 then begin
          Printf.eprintf "error: %d answer mismatch(es) against a fresh \
                          engine\n"
            !mismatches;
          exit 5
        end
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Verify-restore a session from a store directory: report the \
          snapshot version, WAL records replayed and load time, then \
          check each $(b,--query) answer against a fresh engine on the \
          restored structure (exit 5 on any mismatch).")
    Term.(
      const run $ engine_arg $ ball_cache_arg $ stats_buckets_arg
      $ budget_arg $ snapshot_queries_arg $ log_level_arg $ store_dir_arg)

let snapshot_cmd =
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:
         "Manage the persistent prepared-structure store: $(b,save) a \
          prewarmed session, $(b,info) on a store directory, \
          verify-$(b,load) a snapshot (+WAL).")
    [ snapshot_save_cmd; snapshot_info_cmd; snapshot_load_cmd ]

(* ---------------- batch ---------------- *)

let batch_cmd =
  let run structure engine jobs ball_cache_mb budget_mb repeat stats trace
      metrics log_level queries_file =
    setup_obs ~trace ~metrics ~log_level;
    let a = load_structure structure in
    let srcs =
      (* a line is a comment when it starts with '#' not followed by '(' —
         counting sentences legitimately begin with "#(x,y)." *)
      let comment l =
        String.length l > 0
        && l.[0] = '#'
        && (String.length l = 1 || l.[1] <> '(')
      in
      In_channel.with_open_text queries_file In_channel.input_lines
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && not (comment l))
    in
    let phis =
      List.map
        (fun src ->
          try Foc.parse_formula src
          with Foc.Parser.Error (m, p) ->
            Printf.eprintf "parse error in %S at %d: %s\n" src p m;
            exit 2)
        srcs
    in
    let backend =
      match engine with
      | `Direct -> Foc.Engine.Direct
      | `Cover -> Foc.Engine.Cover
      | `Splitter -> Foc.Engine.Splitter { max_rounds = 4; small = 32 }
      | `Hanf -> Foc.Engine.Hanf
      | `Relalg | `Naive ->
          Printf.eprintf
            "error: batch runs on a session engine \
             (direct|cover|splitter|hanf)\n";
          exit 2
    in
    let jobs = if jobs <= 0 then Foc.Par.default_jobs () else jobs in
    let config =
      {
        Foc.Engine.default_config with
        backend;
        jobs;
        ball_cache_mb;
        trace_file = trace;
      }
    in
    let sess = Foc.Session.create ~budget_mb ~config a in
    let results, seconds =
      timed (fun () ->
          let r = ref [] in
          for _ = 1 to max 1 repeat do
            r := Foc.Session.run_batch sess phis
          done;
          !r)
    in
    finish_obs ~trace ~metrics (Some (Foc.Session.engine sess));
    List.iter (fun b -> Printf.printf "%b\n" b) results;
    if stats then
      Printf.printf "# stats: %s\n" (Foc.Session.stats_line sess);
    Printf.printf "# %d sentences x%d, %.6fs\n" (List.length phis)
      (max 1 repeat) seconds
  in
  let queries_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:
            "File of FOC(P) sentences, one per line; blank lines and \
             comment lines ($(b,#) not followed by $(b,\\()) are skipped.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run the whole batch $(docv) times through the same session \
             (warm-path demonstration; results are identical each round).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Evaluate a file of sentences in one query session, sharing \
          covers, ball caches, Hanf partitions and compiled sentences \
          across the batch.")
    Term.(
      const run $ structure_arg $ engine_arg $ jobs_arg $ ball_cache_arg
      $ budget_arg $ repeat_arg $ stats_arg $ trace_arg $ metrics_arg
      $ log_level_arg $ queries_file)

let () =
  (* a client disconnecting mid-response (or `foc ... | head`) must not
     kill the process: surface EPIPE per-descriptor instead *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let info =
    Cmd.info "foc" ~version:"1.0.0"
      ~doc:
        "First-order query evaluation with cardinality conditions (Grohe & \
         Schweikardt, PODS 2018)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd;
            count_cmd;
            batch_cmd;
            serve_cmd;
            snapshot_cmd;
            call_cmd;
            metrics_cmd;
            top_cmd;
            query_cmd;
            gen_cmd;
            gendb_cmd;
            sql_cmd;
            explain_cmd;
            trace_check_cmd;
          ]))
