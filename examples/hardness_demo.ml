(* Section 4 of the paper, live: encode a graph as a tree (Theorem 4.1) and
   as a string (Theorem 4.3), rewrite an FO sentence into FOC({P=}), verify
   the equivalence, and report the reduction blow-ups.

   Run with:  dune exec examples/hardness_demo.exe *)

let sentences =
  [
    ("triangle exists", "exists x y z. E(x,y) & E(y,z) & E(z,x)");
    ("has isolated vertex", "exists x. forall y. !E(x,y)");
    ("connected-ish (no lonely pair)", "forall x. exists y. E(x,y)");
  ]

let () =
  let rng = Random.State.make [| 4 |] in
  let g = Foc.Gen.erdos_renyi rng 5 0.45 in
  Printf.printf "G: %d vertices, %d edges\n" (Foc.Graph.order g)
    (Foc.Graph.edge_count g);

  let tree = Foc.Tree_encoding.encode_graph g in
  let str = Foc.String_encoding.encode_graph g in
  Printf.printf "T_G: %d vertices (tree, height 3)\n"
    (Foc.Structure.order tree);
  Printf.printf "S_G: %d positions, \"%s...\"\n"
    (Foc.Structure.order str)
    (String.sub (Foc.String_encoding.string_of_graph g) 0
       (min 40 (Foc.Structure.order str)));

  let g_struct = Foc.Structure.of_graph g in
  List.iter
    (fun (name, src) ->
      let phi = Foc.parse_formula src in
      let phi_tree = Foc.Tree_encoding.encode_sentence phi in
      let phi_str = Foc.String_encoding.encode_sentence phi in
      let on_g = Foc.Naive.sentence Foc.predicates g_struct phi in
      let on_tree = Foc.Relalg.holds Foc.predicates tree [] phi_tree in
      let on_str = Foc.Relalg.holds Foc.predicates str [] phi_str in
      Printf.printf
        "%-32s  G:%-5b  T_G:%-5b  S_G:%-5b   ‖ϕ‖=%d → ‖ϕ̂_tree‖=%d \
         ‖ϕ̂_string‖=%d\n"
        name on_g on_tree on_str
        (Foc.Measure.size_formula phi)
        (Foc.Measure.size_formula phi_tree)
        (Foc.Measure.size_formula phi_str);
      assert (on_g = on_tree && on_g = on_str))
    sentences;

  (* the punchline of Section 4: the edge-simulation formula is not FOC1 *)
  let psi_e = Foc.Tree_encoding.psi_edge "x" "y" in
  Printf.printf
    "\nψ_E uses a predicate over two free variables — FOC1? %b (Theorem 4.1 \
     needs full FOC)\n"
    (Foc.Fragment.is_foc1 psi_e)
