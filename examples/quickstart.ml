(* Quickstart: build a coloured random tree, ask FOC1 questions with the
   localized engine, and sanity-check one of them against the naive
   semantics.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let rng = Random.State.make [| 2024 |] in

  (* a random tree on 2000 nodes, with nodes coloured red/blue at random *)
  let graph = Foc.Gen.random_tree rng 2000 in
  let db =
    Foc.Db_gen.colored_digraph rng ~graph ~orient:`Both ~p_red:0.3 ~p_blue:0.4
      ~p_green:0.2
  in
  Printf.printf "structure: %d elements, size %d\n"
    (Foc.Structure.order db) (Foc.Structure.size db);

  (* 1. a Boolean query: is the number of red nodes prime? (Example 3.2) *)
  let prime_reds = "prime(#(x). R(x))" in
  Printf.printf "%-55s %b\n" prime_reds (Foc.check db prime_reds);

  (* 2. a ground count: edges with a blue endpoint *)
  let blue_edges = "#(x,y). (E(x,y) & (B(x) | B(y)))" in
  Printf.printf "%-55s %d\n" blue_edges (Foc.count db blue_edges);

  (* 3. a per-element count: blue out-neighbours of every node (t_B of
     Example 5.4), evaluated at all 2000 elements in one localized sweep *)
  let t_b = "#(y). (E(x,y) & B(y))" in
  let degrees = Foc.eval_at_all db "x" t_b in
  let total = Array.fold_left ( + ) 0 degrees in
  Printf.printf "%-55s sum=%d max=%d\n" t_b total
    (Array.fold_left max 0 degrees);

  (* 4. a full FOC1 query {(x, t(x)) : R(x)} *)
  let q =
    Foc.Query.make ~head_vars:[ "x" ]
      ~head_terms:[ Foc.parse_term t_b ]
      (Foc.parse_formula "R(x)")
  in
  let eng = Foc.Engine.create () in
  let rows = Foc.Engine.run_query eng db q in
  Printf.printf "query {(x, t_B(x)) : R(x)}: %d rows\n" (List.length rows);

  (* 5. cross-check a sentence against the verbatim Definition 3.1
     semantics on a small substructure *)
  let small, _ =
    Foc.Structure.induced db (List.init 60 (fun i -> i))
  in
  let sentence = Foc.parse_formula "exists x. R(x) & (#(y). E(x,y)) >= 1" in
  let naive = Foc.Naive.sentence Foc.predicates small sentence in
  let engine = Foc.Engine.check (Foc.Engine.create ()) small sentence in
  Printf.printf "engine agrees with naive semantics: %b\n" (naive = engine);

  (* engine telemetry *)
  let st = Foc.Engine.stats eng in
  Printf.printf
    "engine stats: %d cl-terms (%d basic), %d materialised relations, %d \
     fallbacks\n"
    st.clterms_built st.basic_terms st.materialised st.fallbacks
