(* Section 9, open question (2): maintaining query answers under database
   updates. The locality of cl-terms gives the repair rule — an update only
   moves values within a fixed-radius ball.

   Run with:  dune exec examples/incremental_demo.exe *)

let () =
  let rng = Random.State.make [| 21 |] in
  let a =
    Foc.Db_gen.colored_digraph rng
      ~graph:(Foc.Gen.random_tree rng 5000)
      ~orient:`Both ~p_red:0.3 ~p_blue:0.4 ~p_green:0.3
  in
  let body = Foc.parse_formula "E(x,y) & B(y)" in
  let cl =
    match Foc.Decompose.unary_count ~r:1 ~vars:[ "x"; "y" ] body with
    | Some cl -> cl
    | None -> failwith "decomposition failed"
  in
  Printf.printf "maintaining t_B(x) = #(y).(E(x,y) ∧ B(y)) on 5000 nodes\n";
  let t0 = Sys.time () in
  let inc = Foc.Incremental.create Foc.predicates a cl in
  Printf.printf "initial evaluation: %.3fs\n" (Sys.time () -. t0);

  let total () = Array.fold_left ( + ) 0 (Foc.Incremental.values inc) in
  Printf.printf "initial total: %d\n" (total ());

  let t1 = Sys.time () in
  let touched = ref 0 in
  for _ = 1 to 100 do
    let n = Foc.Structure.order (Foc.Incremental.structure inc) in
    let u = Random.State.int rng n and v = Random.State.int rng n in
    touched :=
      !touched
      +
      match Random.State.int rng 3 with
      | 0 -> Foc.Incremental.insert inc "E" [| u; v |]
      | 1 -> Foc.Incremental.insert inc "B" [| u |]
      | _ -> Foc.Incremental.delete inc "B" [| u |]
  done;
  Printf.printf
    "100 updates: %.3fs, %d anchor re-evaluations (%.1f per update)\n"
    (Sys.time () -. t1) !touched
    (float_of_int !touched /. 100.0);
  Printf.printf "total after updates: %d\n" (total ());

  (* verify against recomputation *)
  let ctx =
    Foc.Pattern_count.make_ctx Foc.predicates
      (Foc.Incremental.structure inc)
      ~r:1
  in
  let fresh = Foc.Clterm.eval_unary ctx cl in
  Printf.printf "matches recomputation from scratch: %b\n"
    (fresh = Foc.Incremental.values inc)
