(* Example 5.3 of the paper, end to end: the three SQL COUNT statements,
   compiled to FOC1(P)-queries and evaluated on a generated Customer/Order
   database.

   Run with:  dune exec examples/sql_counts.exe *)

let () =
  let rng = Random.State.make [| 7 |] in
  let d =
    Foc.Db_gen.customer_order rng ~customers:500 ~orders:2000 ~countries:8
      ~cities:15
  in
  let schema = Foc.Sql_schema.customer_order in
  let consts = [ ("Berlin", Foc.Db_gen.berlin_rel) ] in
  let eng = Foc.Engine.create () in

  (* ---- statement 1: customers per country ---- *)
  let src1 = "SELECT Country, COUNT(Id) FROM Customer GROUP BY Country" in
  let q1 = Foc.Sql_compile.parse_to_query schema ~consts src1 in
  Printf.printf "SQL> %s\n" src1;
  Printf.printf "FOC1> %s\n" (Format.asprintf "%a" Foc.Query.pp q1);
  let rows = Foc.Engine.run_query eng d.Foc.Db_gen.db q1 in
  let nonzero =
    List.filter (fun (_, values) -> values.(0) > 0) rows
  in
  List.iter
    (fun (tuple, values) ->
      Printf.printf "  country #%d -> %d customers\n" tuple.(0) values.(0))
    nonzero;

  (* ---- statement 2: total customers and total orders ---- *)
  print_newline ();
  Printf.printf
    "SQL> SELECT (SELECT COUNT(*) FROM Customer) AS No_Of_Customers,\n";
  Printf.printf "          (SELECT COUNT(*) FROM Order) AS No_Of_Orders\n";
  let q2 = Foc.Sql_compile.scalar_counts schema [ "Customer"; "Order" ] in
  (match Foc.Engine.run_query eng d.Foc.Db_gen.db q2 with
  | [ (_, values) ] ->
      Printf.printf "  customers=%d orders=%d\n" values.(0) values.(1)
  | _ -> prerr_endline "unexpected result shape");

  (* ---- statement 3: orders per Berlin customer ---- *)
  print_newline ();
  let src3 =
    "SELECT C.FirstName, C.LastName, COUNT(O.Id) FROM Customer C, Order O \
     WHERE C.City = 'Berlin' AND O.CustomerId = C.Id GROUP BY C.FirstName, \
     C.LastName"
  in
  let q3 = Foc.Sql_compile.parse_to_query schema ~consts src3 in
  Printf.printf "SQL> %s\n" src3;
  Printf.printf "FOC1 is respected: %b\n" (Foc.Query.is_foc1 q3);
  let rows3 = Foc.Engine.run_query eng d.Foc.Db_gen.db q3 in
  Printf.printf "  %d Berlin name pairs\n" (List.length rows3);
  List.iteri
    (fun i (tuple, values) ->
      if i < 8 then
        Printf.printf "  name (#%d, #%d) -> %d orders\n" tuple.(0) tuple.(1)
          values.(0))
    rows3;

  (* cross-check against the baseline engine *)
  let baseline = Foc.Relalg.query Foc.predicates d.Foc.Db_gen.db q3 in
  Printf.printf "matches the relational-algebra baseline: %b\n"
    (baseline = rows3)
