(* The bounded-degree route (the paper's predecessor [16]): group elements
   by the isomorphism type of their r-ball and evaluate once per type.
   Regular structures have very few types; hub-heavy ones degenerate.

   Run with:  dune exec examples/hanf_demo.exe *)

let () =
  let show name a r =
    let n = Foc.Structure.order a in
    let types = Foc.Hanf.type_count a ~r in
    Printf.printf "%-22s n=%-6d r=%d  ball types: %d\n" name n r types
  in
  let rng = Random.State.make [| 3 |] in
  show "cycle (transitive)" (Foc.Structure.of_graph (Foc.Gen.cycle 500)) 2;
  show "grid" (Foc.Structure.of_graph (Foc.Gen.grid 20 20)) 1;
  show "grid" (Foc.Structure.of_graph (Foc.Gen.grid 20 20)) 2;
  show "binary tree" (Foc.Structure.of_graph (Foc.Gen.binary_tree 500)) 2;
  show "random tree (hubs)"
    (Foc.Structure.of_graph (Foc.Gen.random_tree rng 500))
    2;

  (* the Hanf back-end evaluates once per type *)
  let graph = Foc.Gen.grid 30 30 in
  let db =
    Foc.Db_gen.colored_digraph
      (Random.State.make [| 9 |])
      ~graph ~orient:`Both ~p_red:1.0 ~p_blue:1.0 ~p_green:0.0
  in
  (* fully coloured grid: highly regular, few types *)
  let term = Foc.parse_term "#(y). (E(x,y) & B(y))" in
  let hanf =
    Foc.Engine.create
      ~config:{ Foc.Engine.default_config with backend = Foc.Engine.Hanf }
      ()
  in
  let direct = Foc.Engine.create () in
  let v1 = Foc.Engine.eval_unary direct db "x" term in
  let v2 = Foc.Engine.eval_unary hanf db "x" term in
  Printf.printf "hanf backend agrees with direct on a 900-node grid: %b\n"
    (v1 = v2);
  Printf.printf "degree histogram by type: interior=%d, edge=%d, corner=%d\n"
    v1.(31 + 31) (* interior *)
    v1.(1) (* border *)
    v1.(0) (* corner *)
