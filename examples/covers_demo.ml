(* Sections 7 and 8 in action: sparse neighbourhood covers and the splitter
   game on the standard workload classes — nowhere dense classes get
   small-degree covers and quick Splitter wins; cliques do not.

   Run with:  dune exec examples/covers_demo.exe *)

let () =
  let n = 1000 in
  Printf.printf "%-18s %8s %6s %9s %9s %8s %8s\n" "class" "n" "r"
    "clusters" "maxdeg" "radius" "rounds";
  List.iter
    (fun (cls : Foc.Classes.t) ->
      let g = cls.generate ~seed:1 ~n:(min n (if cls.nowhere_dense then n else 100)) in
      List.iter
        (fun r ->
          let cover = Foc.Cover.make g ~r in
          let rng = Random.State.make [| 5 |] in
          let rounds =
            Foc.Splitter.rounds_to_win g ~r ~max_rounds:12
              ~connector:(Foc.Splitter.connector_greedy ~r rng)
              ~splitter:(cls.splitter g)
          in
          Printf.printf "%-18s %8d %6d %9d %9d %8d %8s\n" cls.name
            (Foc.Graph.order g) r
            (Foc.Cover.cluster_count cover)
            (Foc.Cover.max_degree cover)
            (Foc.Cover.max_cluster_radius cover g)
            (match rounds with
            | Some k -> string_of_int k
            | None -> ">12"))
        [ 1; 2 ])
    Foc.Classes.standard
