(* Example 5.4 of the paper: coloured directed graphs and the query

     { (x, y, t_B(x) · t_Δ(y)) : φ_B,Δ,R(x) ∧ G(y) }

   where t_B counts blue out-neighbours, t_Δ counts directed triangles
   through a node, and φ_B,Δ,R compares t_B with t_Δ plus the number of
   nodes whose triangle count equals the number of red nodes (a #-depth-2
   condition exercising the full stratification of Theorem 6.10).

   Run with:  dune exec examples/triangles.exe *)

let t_b v = Printf.sprintf "#(u). (E(%s,u) & B(u))" v
let t_delta v = Printf.sprintf "#(u,v). (E(%s,u) & E(u,v) & E(v,%s))" v v
let t_delta_r = Printf.sprintf "#(w). eq(%s, #(z). R(z))" (t_delta "w")

let phi_bdr v =
  Printf.sprintf "eq(%s, %s + %s)" (t_b v) (t_delta v) t_delta_r

let () =
  let rng = Random.State.make [| 99 |] in
  let graph = Foc.Gen.random_bounded_degree rng 400 4 in
  let db =
    Foc.Db_gen.colored_digraph rng ~graph ~orient:`Random ~p_red:0.02
      ~p_blue:0.5 ~p_green:0.3
  in
  Printf.printf "workload: bounded-degree digraph, %d nodes, %d edge tuples\n"
    (Foc.Structure.order db)
    (Foc.Tuple.Set.cardinal (Foc.Structure.rel db "E"));

  let eng = Foc.Engine.create () in

  (* the ground term t_Δ,R: how many nodes participate in exactly as many
     triangles as there are red nodes? *)
  let tdr = Foc.parse_term t_delta_r in
  Printf.printf "t_Δ,R (nodes with triangle count = #red) = %d\n"
    (Foc.Engine.eval_ground eng db tdr);

  (* triangle counts per node, in one sweep *)
  let triangles = Foc.Engine.eval_unary eng db "x" (Foc.parse_term (t_delta "x")) in
  Printf.printf "total directed triangle incidences = %d\n"
    (Array.fold_left ( + ) 0 triangles);

  (* the full query of Example 5.4 *)
  let q =
    Foc.Query.make ~head_vars:[ "x"; "y" ]
      ~head_terms:
        [ Foc.Ast.Mul (Foc.parse_term (t_b "x"), Foc.parse_term (t_delta "y")) ]
      (Foc.parse_formula (Printf.sprintf "%s & G(y)" (phi_bdr "x")))
  in
  Printf.printf "query is FOC1: %b\n" (Foc.Query.is_foc1 q);
  let rows = Foc.Engine.run_query eng db q in
  Printf.printf "result rows: %d\n" (List.length rows);
  List.iteri
    (fun i (tuple, values) ->
      if i < 5 then
        Printf.printf "  (x=%d, y=%d, t_B(x)*t_Δ(y)=%d)\n" tuple.(0)
          tuple.(1) values.(0))
    rows;

  (* per-tuple interface of Theorem 5.5 *)
  (match rows with
  | (tuple, values) :: _ -> begin
      match Foc.Engine.check_tuple eng db q tuple with
      | Some (true, vs) ->
          Printf.printf "check_tuple confirms the first row: %b\n"
            (vs = values)
      | _ -> print_endline "check_tuple disagreed!"
    end
  | [] -> ());

  let st = Foc.Engine.stats eng in
  Printf.printf
    "engine stats: %d materialised relations, %d cl-terms, %d fallbacks\n"
    st.materialised st.clterms_built st.fallbacks
